//! Append-only write-ahead log of basestation state deltas.
//!
//! File layout:
//!
//! ```text
//! header:  magic b"ACQPWAL1" (8) + format version u16 (2)
//! record:  body length u32 (4)
//!          body = seq u64 + tag u8 + payload
//!          fnv1a64(body) (8)
//! ```
//!
//! Each record carries its own checksum and monotonic sequence number,
//! so the log validates record-by-record: [`scan`] returns the longest
//! valid prefix and flags whether the file ends in garbage. A torn
//! tail is the *expected* post-crash state — the last record was being
//! appended when the process died — and costs exactly the work of that
//! one record. Sequence numbers make replay idempotent: recovery skips
//! every record already folded into the snapshot (`seq <= last_seq`).

use std::io::Write as _;
use std::path::Path;

use crate::codec::{Reader, Writer};
use crate::{fnv1a64, io_err, PersistError, Result};

/// WAL file magic (version baked into the name; the u16 that follows
/// allows in-place minor revisions).
pub const WAL_MAGIC: &[u8; 8] = b"ACQPWAL1";
/// WAL format version this build writes and reads.
pub const WAL_VERSION: u16 = 1;

/// Cap on a single record body. A corrupt length prefix must not make
/// the scanner buffer gigabytes before its checksum can fail.
const MAX_RECORD: u32 = 1 << 26;

/// One logged state delta.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Predicate-evaluation counters observed at the basestation:
    /// `pred` was evaluated `evaluated` times and passed `passed` times
    /// since the last record for it.
    Observe {
        /// Predicate index within the running query.
        pred: u16,
        /// Evaluations in this delta.
        evaluated: u64,
        /// Passes in this delta.
        passed: u64,
    },
    /// A tuple entered the sliding window.
    WindowPush {
        /// The tuple, one code per schema attribute.
        row: Vec<u16>,
    },
    /// A new plan was adopted and disseminated.
    PlanAdopted {
        /// The adopted plan.
        plan: crate::PlanRecord,
        /// Estimator selectivities at adoption time, used to re-seed
        /// the drift monitor's expectations on recovery.
        est_selectivities: Vec<f64>,
    },
    /// An epoch finished cleanly.
    EpochEnd {
        /// The epoch that just completed.
        epoch: u64,
    },
    /// The multi-query service admitted (or drift-readmitted) a
    /// schedule entry.
    ServeAdmit {
        /// Index of the entry in the service schedule.
        idx: u64,
        /// Epoch the admission happened at.
        epoch: u64,
        /// The admitted query's signature.
        sig: u64,
        /// Whether the plan came from the policy's cache.
        cache_hit: bool,
    },
    /// A service query terminated.
    ServeComplete {
        /// Index of the entry in the service schedule.
        idx: u64,
        /// Epoch the query terminated at.
        epoch: u64,
        /// `QueryStatus::to_u8` of the terminal outcome.
        status: u8,
    },
}

impl WalRecord {
    fn tag(&self) -> u8 {
        match self {
            WalRecord::Observe { .. } => 1,
            WalRecord::WindowPush { .. } => 2,
            WalRecord::PlanAdopted { .. } => 3,
            WalRecord::EpochEnd { .. } => 4,
            WalRecord::ServeAdmit { .. } => 5,
            WalRecord::ServeComplete { .. } => 6,
        }
    }

    /// Encodes `seq` + tag + payload (the checksummed record body).
    pub fn encode_body(&self, seq: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(seq);
        w.u8(self.tag());
        match self {
            WalRecord::Observe { pred, evaluated, passed } => {
                w.u16(*pred);
                w.u64(*evaluated);
                w.u64(*passed);
            }
            WalRecord::WindowPush { row } => w.u16s(row),
            WalRecord::PlanAdopted { plan, est_selectivities } => {
                w.u64(plan.version);
                w.bytes(&plan.wire);
                w.f64(plan.expected_cost);
                w.f64(plan.objective);
                w.f64s(est_selectivities);
            }
            WalRecord::EpochEnd { epoch } => w.u64(*epoch),
            WalRecord::ServeAdmit { idx, epoch, sig, cache_hit } => {
                w.u64(*idx);
                w.u64(*epoch);
                w.u64(*sig);
                w.u8(*cache_hit as u8);
            }
            WalRecord::ServeComplete { idx, epoch, status } => {
                w.u64(*idx);
                w.u64(*epoch);
                w.u8(*status);
            }
        }
        w.into_bytes()
    }

    /// Decodes a record body back into `(seq, record)`.
    pub fn decode_body(body: &[u8]) -> Result<(u64, WalRecord)> {
        let mut r = Reader::new(body);
        let seq = r.u64()?;
        let rec = match r.u8()? {
            1 => WalRecord::Observe { pred: r.u16()?, evaluated: r.u64()?, passed: r.u64()? },
            2 => WalRecord::WindowPush { row: r.u16s()? },
            3 => WalRecord::PlanAdopted {
                plan: crate::PlanRecord {
                    version: r.u64()?,
                    wire: r.bytes()?,
                    expected_cost: r.f64()?,
                    objective: r.f64()?,
                },
                est_selectivities: r.f64s()?,
            },
            4 => WalRecord::EpochEnd { epoch: r.u64()? },
            5 => WalRecord::ServeAdmit {
                idx: r.u64()?,
                epoch: r.u64()?,
                sig: r.u64()?,
                cache_hit: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(PersistError::Corrupt { what: "serve-admit hit flag" }),
                },
            },
            6 => WalRecord::ServeComplete { idx: r.u64()?, epoch: r.u64()?, status: r.u8()? },
            _ => return Err(PersistError::Corrupt { what: "unknown WAL record tag" }),
        };
        r.finish()?;
        Ok((seq, rec))
    }

    /// Frames the record for appending: length + body + checksum.
    pub fn to_frame(&self, seq: u64) -> Vec<u8> {
        let body = self.encode_body(seq);
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        out
    }
}

/// The fresh-file WAL header bytes.
pub fn wal_header() -> Vec<u8> {
    let mut h = Vec::with_capacity(10);
    h.extend_from_slice(WAL_MAGIC);
    h.extend_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Result of scanning a WAL file: the valid prefix, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Every record that validated, as `(seq, record)` in file order.
    pub records: Vec<(u64, WalRecord)>,
    /// True if the file ended in bytes that failed to validate (torn
    /// tail after a crash, or corruption). Scanning stops there; the
    /// records before it are still good.
    pub torn_tail: bool,
}

/// Scans raw WAL file bytes, returning the longest valid prefix.
///
/// A missing or mangled header yields an empty scan with `torn_tail`
/// set — the file contributes nothing, but the caller keeps going.
pub fn scan_bytes(bytes: &[u8]) -> WalScan {
    let header = wal_header();
    if bytes.len() < header.len() || bytes[..header.len()] != header[..] {
        return WalScan { records: Vec::new(), torn_tail: true };
    }
    let mut pos = header.len();
    let mut records = Vec::new();
    let mut last_seq = 0u64;
    while pos < bytes.len() {
        let Some(len) = bytes.get(pos..pos + 4).and_then(crate::codec::le_u32) else { break };
        if len > MAX_RECORD {
            return WalScan { records, torn_tail: true };
        }
        let body_start = pos + 4;
        let body_end = body_start + len as usize;
        let sum_end = body_end + 8;
        if sum_end > bytes.len() {
            return WalScan { records, torn_tail: true };
        }
        let body = &bytes[body_start..body_end];
        let stored = crate::codec::le_u64(&bytes[body_end..sum_end]);
        if stored != Some(fnv1a64(body)) {
            return WalScan { records, torn_tail: true };
        }
        let Ok((seq, rec)) = WalRecord::decode_body(body) else {
            return WalScan { records, torn_tail: true };
        };
        // Sequence numbers must strictly increase; a regression means
        // the file was stitched or overwritten — stop trusting it.
        if !records.is_empty() && seq <= last_seq {
            return WalScan { records, torn_tail: true };
        }
        last_seq = seq;
        records.push((seq, rec));
        pos = sum_end;
    }
    let torn = pos != bytes.len();
    WalScan { records, torn_tail: torn }
}

/// Scans a WAL file from disk. A missing file is an empty, clean scan
/// (no log yet, nothing torn).
pub fn scan_file(path: &Path) -> Result<WalScan> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(scan_bytes(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok(WalScan { records: Vec::new(), torn_tail: false })
        }
        Err(e) => Err(io_err(path, e)),
    }
}

/// Appends one framed record to an open WAL file and flushes it.
pub fn append_frame(file: &mut std::fs::File, path: &Path, frame: &[u8]) -> Result<()> {
    file.write_all(frame).map_err(|e| io_err(path, e))?;
    file.flush().map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanRecord;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Observe { pred: 1, evaluated: 10, passed: 4 },
            WalRecord::WindowPush { row: vec![3, 1, 4] },
            WalRecord::PlanAdopted {
                plan: PlanRecord {
                    version: 2,
                    wire: vec![0x02, 0x01],
                    expected_cost: 7.5,
                    objective: 7.5,
                },
                est_selectivities: vec![0.25, 0.75],
            },
            WalRecord::EpochEnd { epoch: 9 },
            WalRecord::ServeAdmit { idx: 4, epoch: 11, sig: 0xdead_beef, cache_hit: true },
            WalRecord::ServeComplete { idx: 4, epoch: 19, status: 1 },
        ]
    }

    fn file_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = wal_header();
        for (i, rec) in records.iter().enumerate() {
            bytes.extend_from_slice(&rec.to_frame(i as u64 + 1));
        }
        bytes
    }

    #[test]
    fn every_variant_round_trips() {
        for (i, rec) in samples().into_iter().enumerate() {
            let body = rec.encode_body(i as u64 + 100);
            let (seq, back) = WalRecord::decode_body(&body).unwrap();
            assert_eq!(seq, i as u64 + 100);
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn scan_reads_full_clean_file() {
        let recs = samples();
        let scan = scan_bytes(&file_bytes(&recs));
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), recs.len());
        for (i, (seq, rec)) in scan.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(rec, &recs[i]);
        }
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let recs = samples();
        let full = file_bytes(&recs);
        // Chop mid-way through the last record's frame.
        let cut = full.len() - 5;
        let scan = scan_bytes(&full[..cut]);
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), recs.len() - 1);
    }

    #[test]
    fn corrupt_record_stops_scan_at_prefix() {
        let recs = samples();
        let mut bytes = file_bytes(&recs);
        // Flip a byte inside the third record's body.
        let hdr = wal_header().len();
        let len0 = u32::from_le_bytes(bytes[hdr..hdr + 4].try_into().unwrap()) as usize;
        let r1 = hdr + 4 + len0 + 8;
        let len1 = u32::from_le_bytes(bytes[r1..r1 + 4].try_into().unwrap()) as usize;
        let r2 = r1 + 4 + len1 + 8;
        bytes[r2 + 10] ^= 0xff;
        let scan = scan_bytes(&bytes);
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn bad_header_and_seq_regression_are_rejected() {
        let mut bytes = file_bytes(&samples());
        bytes[0] ^= 0x01;
        let scan = scan_bytes(&bytes);
        assert!(scan.torn_tail);
        assert!(scan.records.is_empty());

        // Stitch a record with a repeated sequence number.
        let mut bytes = wal_header();
        let rec = WalRecord::EpochEnd { epoch: 1 };
        bytes.extend_from_slice(&rec.to_frame(5));
        bytes.extend_from_slice(&rec.to_frame(5));
        let scan = scan_bytes(&bytes);
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn missing_file_scans_clean_and_empty() {
        let scan = scan_file(Path::new("/nonexistent/acqp-wal-test")).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.torn_tail);
    }
}
