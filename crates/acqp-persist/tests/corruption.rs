//! Fuzz-style robustness: no byte stream — random, truncated, or a
//! corrupted valid artifact — may panic the decoders, and nothing that
//! fails validation may silently decode.

use acqp_persist::snapshot::BasestationCheckpoint;
use acqp_persist::wal::{scan_bytes, WalRecord};
use acqp_persist::PlanRecord;
use proptest::prelude::*;

fn valid_snapshot() -> Vec<u8> {
    BasestationCheckpoint {
        epoch: 7,
        last_seq: 21,
        plan: PlanRecord {
            version: 2,
            wire: vec![0x02, 0x01, 0x00],
            expected_cost: 3.5,
            objective: 3.5,
        },
        drift: None,
        window: None,
        mask_cache: None,
        ledgers: vec![[1.0, 0.5, 0.25, 0.0]],
    }
    .to_file_bytes()
}

fn valid_wal() -> Vec<u8> {
    let mut bytes = acqp_persist::wal::wal_header();
    for (i, rec) in [
        WalRecord::Observe { pred: 0, evaluated: 12, passed: 5 },
        WalRecord::WindowPush { row: vec![1, 2, 3] },
        WalRecord::EpochEnd { epoch: 1 },
    ]
    .iter()
    .enumerate()
    {
        bytes.extend_from_slice(&rec.to_frame(i as u64 + 1));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Arbitrary bytes never panic the snapshot decoder, and (checksum
    /// aside) essentially never validate.
    #[test]
    fn random_bytes_never_panic_snapshot_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = BasestationCheckpoint::from_file_bytes(&bytes);
        let _ = BasestationCheckpoint::decode(&bytes);
    }

    /// Arbitrary bytes never panic the WAL scanner; it always returns a
    /// (possibly empty) valid prefix.
    #[test]
    fn random_bytes_never_panic_wal_scanner(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let scan = scan_bytes(&bytes);
        let _ = scan.records.len();
    }

    /// Flipping any single byte of a valid snapshot is detected.
    #[test]
    fn any_byte_flip_in_snapshot_is_detected(pos in 0usize..1024, mask in 1u8..=255) {
        let mut bytes = valid_snapshot();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        prop_assert!(BasestationCheckpoint::from_file_bytes(&bytes).is_err());
    }

    /// Flipping a byte in a valid WAL never panics and never grows the
    /// record count; truncating it keeps a valid prefix.
    #[test]
    fn wal_corruption_shrinks_to_a_valid_prefix(pos in 0usize..1024, mask in 1u8..=255, cut in 0usize..1024) {
        let good = valid_wal();
        let full = scan_bytes(&good);
        prop_assert!(!full.torn_tail);

        let mut flipped = good.clone();
        let pos = pos % flipped.len();
        flipped[pos] ^= mask;
        let scan = scan_bytes(&flipped);
        prop_assert!(scan.records.len() <= full.records.len());
        // Whatever survives is a prefix of the original log.
        for (a, b) in scan.records.iter().zip(full.records.iter()) {
            prop_assert!(a == b);
        }

        let cut = cut % (good.len() + 1);
        let scan = scan_bytes(&good[..cut]);
        prop_assert!(scan.records.len() <= full.records.len());
        for (a, b) in scan.records.iter().zip(full.records.iter()) {
            prop_assert!(a == b);
        }
    }
}
