//! The basestation: off-line plan construction and dissemination
//! costing (§2.4, §2.5).

use acqp_core::prelude::*;

use crate::energy::EnergyModel;

/// Which planning algorithm the basestation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerChoice {
    /// §4.1.1's traditional ordering.
    Naive,
    /// Correlation-aware sequential plan (`OptSeq`/`GreedySeq` via
    /// [`SeqAlgorithm::Auto`]).
    CorrSeq,
    /// The greedy conditional planner with at most `k` splits.
    Heuristic(usize),
}

/// A plan ready for dissemination.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The plan tree.
    pub plan: Plan,
    /// Its wire encoding (what is actually broadcast).
    pub wire: Vec<u8>,
    /// Expected per-tuple acquisition cost under the training data
    /// (schema cost units).
    pub expected_cost: f64,
    /// The §2.4 objective `C(P) + α·ζ(P)` used to select it.
    pub objective: f64,
}

/// Search budget for a drift-triggered re-plan. Re-planning happens
/// *during* query execution, so it runs under the PR 1 planning budget
/// (`max_subproblems`) rather than unbounded; a wall-clock budget is
/// deliberately not used here so re-planning stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplanBudget {
    /// Subproblem cap handed to [`ExhaustivePlanner::max_subproblems`].
    pub max_subproblems: usize,
    /// Equal-width split points per attribute for the re-plan grid.
    pub grid_splits: usize,
}

impl Default for ReplanBudget {
    fn default() -> Self {
        ReplanBudget { max_subproblems: 50_000, grid_splits: 3 }
    }
}

/// What a drift-triggered re-plan decided.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// The candidate plan (adopted or not).
    pub planned: PlannedQuery,
    /// True when the candidate beat the stale plan under the drifted
    /// estimator and should be re-disseminated.
    pub adopted: bool,
    /// True when the exhaustive search hit its subproblem budget.
    pub truncated: bool,
    /// True when the candidate came from the `GreedySeq` fallback
    /// (budget truncation or too many predicates for the DP).
    pub fell_back: bool,
    /// Expected per-tuple cost of *continuing the stale plan* under the
    /// drifted-window estimator.
    pub stale_cost: f64,
    /// Expected per-tuple cost of the candidate under the same
    /// estimator. When `adopted`, strictly below `stale_cost`.
    pub new_cost: f64,
    /// Per-predicate selectivities of the window estimator — what the
    /// drift monitor should be re-armed with.
    pub est_selectivities: Vec<f64>,
}

/// The well-provisioned node that plans for the network.
pub struct Basestation<'h> {
    schema: Schema,
    history: &'h Dataset,
}

impl<'h> Basestation<'h> {
    /// Creates a basestation over collected historical readings.
    pub fn new(schema: Schema, history: &'h Dataset) -> Self {
        Basestation { schema, history }
    }

    /// The schema being planned over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Statically verifies a freshly built plan before it can be
    /// disseminated: wire bytes pass the structural and semantic
    /// passes, and the planner's claimed expected cost lands inside the
    /// certified per-tuple bound. A planner bug that emits malformed
    /// bytes or an impossible cost claim is caught here, at the
    /// basestation, instead of bricking motes in the field.
    fn certify(&self, query: &Query, p: &PlannedQuery) -> Result<()> {
        let cert = acqp_verify::verify_wire(&p.wire, query, &self.schema)?;
        cert.check_claim(p.expected_cost)?;
        Ok(())
    }

    /// The historical readings the basestation plans from. Crash
    /// recovery rebuilds estimators over exactly this dataset.
    pub fn history(&self) -> &'h Dataset {
        self.history
    }

    /// Builds a plan with the given planner; `alpha` is the §2.4
    /// plan-size penalty (cost units per byte of plan).
    pub fn plan_query(
        &self,
        query: &Query,
        choice: PlannerChoice,
        alpha: f64,
    ) -> Result<PlannedQuery> {
        let est = CountingEstimator::with_ranges(self.history, Ranges::root(&self.schema));
        let (plan, expected_cost) = match choice {
            PlannerChoice::Naive => {
                SeqPlanner::naive().plan_with_cost(&self.schema, query, &est)?
            }
            PlannerChoice::CorrSeq => {
                SeqPlanner::auto().plan_with_cost(&self.schema, query, &est)?
            }
            PlannerChoice::Heuristic(k) => {
                GreedyPlanner::new(k).plan_with_cost(&self.schema, query, &est)?
            }
        };
        let wire = plan.encode();
        let objective = expected_cost + alpha * wire.len() as f64;
        let planned = PlannedQuery { plan, wire, expected_cost, objective };
        self.certify(query, &planned)?;
        Ok(planned)
    }

    /// §2.4's joint optimization, by sweep: builds `Heuristic-k` plans
    /// for each candidate `k` and keeps the one minimizing
    /// `C(P) + α·ζ(P)`. `α = (cost to transmit a byte) / (tuples
    /// processed in the query lifetime)`: long-running queries drive α
    /// toward 0 and larger plans win; short ones keep plans small.
    pub fn plan_query_sized(
        &self,
        query: &Query,
        alpha: f64,
        candidate_splits: &[usize],
    ) -> Result<(usize, PlannedQuery)> {
        let mut best: Option<(usize, PlannedQuery)> = None;
        for &k in candidate_splits {
            let p = self.plan_query(query, PlannerChoice::Heuristic(k), alpha)?;
            if best.as_ref().is_none_or(|(_, b)| p.objective < b.objective) {
                best = Some((k, p));
            }
        }
        best.ok_or(Error::EmptyQuery)
    }

    /// Like [`Basestation::plan_query_sized`] but also reports how many
    /// plan-search subproblems the sweep expanded — the work a plan
    /// cache saves on a hit. Produces identical plans to the unreported
    /// variant (`plan_with_cost` is itself a thin wrapper over
    /// `plan_with_report`).
    pub fn plan_query_sized_reported(
        &self,
        query: &Query,
        alpha: f64,
        candidate_splits: &[usize],
    ) -> Result<(usize, PlannedQuery, u64)> {
        let est = CountingEstimator::with_ranges(self.history, Ranges::root(&self.schema));
        let mut best: Option<(usize, PlannedQuery)> = None;
        let mut subproblems = 0u64;
        for &k in candidate_splits {
            let r = GreedyPlanner::new(k).plan_with_report(&self.schema, query, &est)?;
            subproblems += r.subproblems as u64;
            let wire = r.plan.encode();
            let objective = r.expected_cost + alpha * wire.len() as f64;
            let p = PlannedQuery { plan: r.plan, wire, expected_cost: r.expected_cost, objective };
            if best.as_ref().is_none_or(|(_, b)| p.objective < b.objective) {
                best = Some((k, p));
            }
        }
        let (k, p) = best.ok_or(Error::EmptyQuery)?;
        self.certify(query, &p)?;
        Ok((k, p, subproblems))
    }

    /// The per-predicate selectivities the historical estimator
    /// predicts for `query` — what a freshly planned query's drift
    /// monitor is armed with.
    pub fn estimated_selectivities(&self, query: &Query) -> Vec<f64> {
        let est = CountingEstimator::with_ranges(self.history, Ranges::root(&self.schema));
        estimated_selectivities(query, &est)
    }

    /// Re-plans `query` against a drifted window of live tuples,
    /// deciding whether the stale plan should be replaced.
    ///
    /// The candidate comes from the budgeted [`ExhaustivePlanner`];
    /// when the budget truncates the search (or the query is too large
    /// for the DP at all), the basestation falls back to `GreedySeq` —
    /// a cheaper-but-sound sequential plan beats an arbitrarily
    /// truncated tree. The candidate is **adopted only if it is
    /// strictly cheaper than continuing the stale plan under the same
    /// drifted estimator** (hysteresis: a noisy window never makes the
    /// fleet re-disseminate a worse plan).
    pub fn replan(
        &self,
        query: &Query,
        window: &Dataset,
        budget: &ReplanBudget,
        alpha: f64,
        stale: &PlannedQuery,
    ) -> Result<ReplanOutcome> {
        let est = CountingEstimator::with_ranges(window, Ranges::root(&self.schema));
        let stale_cost = expected_cost(&stale.plan, query, &self.schema, &est);
        let grid = SplitGrid::equal_width(&self.schema, budget.grid_splits);
        let attempt = ExhaustivePlanner::with_grid(grid)
            .max_subproblems(budget.max_subproblems)
            .plan_with_report(&self.schema, query, &est);
        let (plan, new_cost, truncated, fell_back) = match attempt {
            Ok(r) if !r.truncated => (r.plan, r.expected_cost, false, false),
            Ok(_) => {
                let (p, c) = SeqPlanner::greedy().plan_with_cost(&self.schema, query, &est)?;
                (p, c, true, true)
            }
            Err(Error::TooManyPredicates { .. }) => {
                let (p, c) = SeqPlanner::greedy().plan_with_cost(&self.schema, query, &est)?;
                (p, c, false, true)
            }
            Err(e) => return Err(e),
        };
        let wire = plan.encode();
        let objective = new_cost + alpha * wire.len() as f64;
        let adopted = new_cost + 1e-9 < stale_cost;
        let planned = PlannedQuery { plan, wire, expected_cost: new_cost, objective };
        self.certify(query, &planned)?;
        Ok(ReplanOutcome {
            planned,
            adopted,
            truncated,
            fell_back,
            stale_cost,
            new_cost,
            est_selectivities: estimated_selectivities(query, &est),
        })
    }

    /// The §2.4 scaling factor for a deployment: transmit cost per byte
    /// divided by the number of tuples the query will process.
    pub fn alpha_for(model: &EnergyModel, motes: usize, epochs: usize) -> f64 {
        let tuples = (motes * epochs).max(1) as f64;
        // Dissemination reaches every mote: cost per plan byte is
        // tx (basestation) plus rx at each mote.
        let per_byte = model.radio_tx_uj_per_byte + model.radio_rx_uj_per_byte * motes as f64;
        per_byte / tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::Attribute;

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 100.0),
            Attribute::new("b", 2, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..200u16 {
            let t = i % 2;
            let a = if i % 10 == 0 { 1 - t } else { t };
            let b = if i % 12 == 0 { t } else { 1 - t };
            rows.push(vec![a, b, t]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn conditional_beats_naive_in_expectation() {
        let (schema, data, query) = setup();
        let bs = Basestation::new(schema, &data);
        let naive = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let cond = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        assert!(cond.expected_cost < naive.expected_cost);
        assert!(cond.plan.split_count() >= 1);
        assert_eq!(cond.wire.len(), cond.plan.wire_size());
    }

    #[test]
    fn alpha_shrinks_chosen_plans_for_short_queries() {
        let (schema, data, query) = setup();
        let bs = Basestation::new(schema, &data);
        let candidates = [0usize, 1, 2, 4, 8];
        // Long-lived query: alpha ~ 0 -> richest beneficial plan.
        let (k_long, _) = bs.plan_query_sized(&query, 0.0, &candidates).unwrap();
        // Absurdly expensive dissemination: alpha huge -> smallest plan.
        let (k_short, p_short) = bs.plan_query_sized(&query, 1e6, &candidates).unwrap();
        assert!(k_short <= k_long);
        assert_eq!(p_short.plan.split_count(), 0, "huge alpha must force a leaf plan");
    }

    #[test]
    fn reported_sweep_matches_plain_sweep() {
        let (schema, data, query) = setup();
        let bs = Basestation::new(schema, &data);
        let candidates = [0usize, 1, 2, 4, 8];
        for alpha in [0.0, 0.05, 1e6] {
            let (k, p) = bs.plan_query_sized(&query, alpha, &candidates).unwrap();
            let (kr, pr, subs) = bs.plan_query_sized_reported(&query, alpha, &candidates).unwrap();
            assert_eq!(k, kr);
            assert_eq!(p.wire, pr.wire);
            assert_eq!(p.expected_cost, pr.expected_cost);
            assert_eq!(p.objective, pr.objective);
            assert!(subs > 0, "a real sweep expands at least one subproblem");
        }
    }

    #[test]
    fn replan_gate_and_budget_fallback() {
        let (schema, data, query) = setup();
        let bs = Basestation::new(schema, &data);
        let stale = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        // A naive stale plan is strictly beatable on this data.
        let out = bs.replan(&query, &data, &ReplanBudget::default(), 0.0, &stale).unwrap();
        assert!(out.adopted);
        assert!(out.new_cost < out.stale_cost);
        assert_eq!(out.est_selectivities.len(), query.len());
        // Hysteresis: against a plan already optimal for the window,
        // nothing strictly cheaper exists and nothing is adopted.
        let again = bs.replan(&query, &data, &ReplanBudget::default(), 0.0, &out.planned).unwrap();
        assert!(!again.adopted);
        // A starved budget truncates the exhaustive search and falls
        // back to a GreedySeq (leaf) plan.
        let tiny = ReplanBudget { max_subproblems: 1, grid_splits: 3 };
        let fb = bs.replan(&query, &data, &tiny, 0.0, &stale).unwrap();
        assert!(fb.fell_back);
        assert_eq!(fb.planned.plan.split_count(), 0);
    }

    #[test]
    fn alpha_formula_scales_with_lifetime() {
        let model = EnergyModel::mica_like();
        let a_short = Basestation::alpha_for(&model, 10, 10);
        let a_long = Basestation::alpha_for(&model, 10, 10_000);
        assert!(a_long < a_short);
    }
}
