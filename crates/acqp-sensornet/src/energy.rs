//! Energy accounting for motes.
//!
//! Acquisition energy follows the schema's abstract per-attribute costs
//! scaled to microjoules; §7's *complex acquisition costs* are modelled
//! by sensor boards: the first reading from any sensor on a board in a
//! given epoch additionally pays the board's power-up energy. Radio
//! traffic (plan dissemination down, results up) is charged per byte.

use acqp_core::{AttrId, Schema};

/// Static energy parameters of a mote.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    /// Microjoules per abstract schema cost unit.
    pub uj_per_cost_unit: f64,
    /// Sensor boards: the first acquisition from any attribute of a
    /// board in an epoch pays `board_powerup_uj` once (§7).
    pub boards: Vec<Vec<AttrId>>,
    /// Energy to power a sensor board up, per epoch it is used.
    pub board_powerup_uj: f64,
    /// Radio transmit energy per byte.
    pub radio_tx_uj_per_byte: f64,
    /// Radio receive energy per byte.
    pub radio_rx_uj_per_byte: f64,
}

impl EnergyModel {
    /// A model loosely calibrated to mica-mote magnitudes: ~90 µJ per
    /// sampled expensive sensor unit scale, ~1 µJ/byte radio.
    pub fn mica_like() -> Self {
        EnergyModel {
            uj_per_cost_unit: 1.0,
            boards: Vec::new(),
            board_powerup_uj: 0.0,
            radio_tx_uj_per_byte: 1.0,
            radio_rx_uj_per_byte: 0.75,
        }
    }

    /// Adds a sensor board over the given attributes with the given
    /// power-up energy.
    pub fn with_board(mut self, attrs: Vec<AttrId>, powerup_uj: f64) -> Self {
        self.boards.push(attrs);
        self.board_powerup_uj = powerup_uj;
        self
    }

    /// The board index of an attribute, if it sits on one.
    pub fn board_of(&self, attr: AttrId) -> Option<usize> {
        self.boards.iter().position(|b| b.contains(&attr))
    }

    /// Acquisition energy of one reading of `attr` (excluding board
    /// power-up).
    pub fn sense_uj(&self, schema: &Schema, attr: AttrId) -> f64 {
        schema.cost(attr) * self.uj_per_cost_unit
    }
}

/// Running energy totals for one mote (or the whole network).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    /// Sensor sampling energy.
    pub sensing_uj: f64,
    /// Board power-up energy (§7 complex costs).
    pub board_uj: f64,
    /// Radio transmit energy.
    pub radio_tx_uj: f64,
    /// Radio receive energy.
    pub radio_rx_uj: f64,
}

impl EnergyLedger {
    /// Total energy across all categories.
    pub fn total_uj(&self) -> f64 {
        self.sensing_uj + self.board_uj + self.radio_tx_uj + self.radio_rx_uj
    }

    /// Accumulates another ledger into this one.
    pub fn absorb(&mut self, other: &EnergyLedger) {
        self.sensing_uj += other.sensing_uj;
        self.board_uj += other.board_uj;
        self.radio_tx_uj += other.radio_tx_uj;
        self.radio_rx_uj += other.radio_rx_uj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::Attribute;

    #[test]
    fn board_lookup_and_energy() {
        let schema = acqp_core::Schema::new(vec![
            Attribute::new("light", 8, 100.0),
            Attribute::new("temp", 8, 100.0),
            Attribute::new("hour", 24, 1.0),
        ])
        .unwrap();
        let m = EnergyModel::mica_like().with_board(vec![0, 1], 500.0);
        assert_eq!(m.board_of(0), Some(0));
        assert_eq!(m.board_of(1), Some(0));
        assert_eq!(m.board_of(2), None);
        assert_eq!(m.sense_uj(&schema, 0), 100.0);
        assert_eq!(m.sense_uj(&schema, 2), 1.0);
    }

    #[test]
    fn ledger_totals_and_absorb() {
        let mut a =
            EnergyLedger { sensing_uj: 10.0, board_uj: 5.0, radio_tx_uj: 2.0, radio_rx_uj: 1.0 };
        assert_eq!(a.total_uj(), 18.0);
        let b = EnergyLedger { sensing_uj: 1.0, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.sensing_uj, 11.0);
        assert_eq!(a.total_uj(), 19.0);
    }
}
