//! Deterministic, seeded fault injection for the sensornet substrate.
//!
//! Real mote deployments (the paper's §2.5 setting) lose packets, lose
//! whole nodes, and mis-read sensors. This module models all three with
//! a *stateless* pseudo-random fault source: every fault decision is a
//! pure hash of `(seed, stream, mote, epoch, attempt, extra)`, so a run
//! is bit-reproducible for a fixed seed regardless of evaluation order,
//! and a `loss_rate` of exactly `0.0` takes the same code path as the
//! lossless simulator (the first attempt always succeeds).
//!
//! Recovery policy (see `DESIGN.md` §9): every unicast gets up to
//! [`FaultModel::max_attempts`] tries inside its epoch, with truncated
//! binary exponential backoff between tries ([`FaultModel::backoff_slots`]);
//! a packet that exhausts its attempts inside one epoch has *timed out*
//! and is dropped (results) or deferred to the next epoch
//! (dissemination). Every attempt — delivered or not — is charged to the
//! transmitter's [`crate::energy::EnergyLedger`], and counted under the
//! `sensornet.fault.*` metric taxonomy.

use acqp_core::{AttrId, TupleSource};
use acqp_obs::{Counter, Recorder};

/// Which logical packet stream (or sensor read) a fault roll is for.
/// Separating streams keeps the hash inputs disjoint, so e.g. enabling
/// sensing failures cannot perturb which *radio* packets drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStream {
    /// Basestation → mote plan dissemination.
    Dissemination,
    /// Mote → basestation result report.
    Result,
    /// Mote → basestation full-tuple statistics sample.
    Sample,
    /// An on-board sensor acquisition.
    Sensing,
    /// A basestation process crash (crash-recovery simulations). Its
    /// own stream keeps crash scheduling from perturbing which packets
    /// drop: a crashy run with a zero crash rate consumes exactly the
    /// same rolls as a crash-free one.
    Crash,
}

impl FaultStream {
    fn tag(self) -> u64 {
        match self {
            FaultStream::Dissemination => 1,
            FaultStream::Result => 2,
            FaultStream::Sample => 3,
            FaultStream::Sensing => 4,
            FaultStream::Crash => 5,
        }
    }
}

/// A scheduled mote outage: the mote is unreachable (no radio, no
/// sensing) for epochs `from..until`, then rejoins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dropout {
    /// Affected mote id.
    pub mote: u16,
    /// First epoch of the outage (inclusive).
    pub from: usize,
    /// End of the outage (exclusive); the mote rejoins here.
    pub until: usize,
}

/// Deterministic fault source for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Seed for the per-decision hash; two runs with equal seeds and
    /// equal configurations behave identically.
    pub seed: u64,
    /// Default per-packet loss probability on every link, in `[0, 1]`.
    pub loss_rate: f64,
    /// Per-mote loss overrides (indexed by mote id); motes beyond the
    /// vector fall back to [`FaultModel::loss_rate`].
    pub link_loss: Vec<f64>,
    /// Probability a single sensor read fails and must be retried.
    pub sensing_fail_rate: f64,
    /// Scheduled mote outages.
    pub dropouts: Vec<Dropout>,
    /// Attempt cap per packet (or sensor read) per epoch; at least 1.
    pub max_attempts: u32,
    /// Backoff slots after the first failed attempt; doubles per retry.
    pub backoff_base: u32,
}

impl FaultModel {
    /// The lossless model: what the simulator did before fault
    /// injection existed. `run_simulation` uses exactly this.
    pub fn none() -> Self {
        FaultModel {
            seed: 0,
            loss_rate: 0.0,
            link_loss: Vec::new(),
            sensing_fail_rate: 0.0,
            dropouts: Vec::new(),
            max_attempts: 1,
            backoff_base: 1,
        }
    }

    /// A uniformly lossy radio with the default retry policy
    /// (4 attempts, backoff base 2).
    pub fn lossy(seed: u64, loss_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate must be a probability");
        FaultModel { seed, loss_rate, max_attempts: 4, backoff_base: 2, ..Self::none() }
    }

    /// Sets the per-read sensing failure probability.
    pub fn with_sensing_failures(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "sensing failure rate must be a probability");
        self.sensing_fail_rate = rate;
        self
    }

    /// Overrides the loss probability of `mote`'s link.
    pub fn with_link_loss(mut self, mote: u16, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "link loss must be a probability");
        if self.link_loss.len() <= mote as usize {
            self.link_loss.resize(mote as usize + 1, self.loss_rate);
        }
        self.link_loss[mote as usize] = loss;
        self
    }

    /// Schedules an outage.
    pub fn with_dropout(mut self, mote: u16, from: usize, until: usize) -> Self {
        assert!(from < until, "dropout interval must be non-empty");
        self.dropouts.push(Dropout { mote, from, until });
        self
    }

    /// Sets the per-epoch attempt cap (clamped to at least 1).
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// True when no fault of any kind can fire — the model degenerates
    /// to the lossless simulator.
    pub fn is_lossless(&self) -> bool {
        self.loss_rate == 0.0
            && self.sensing_fail_rate == 0.0
            && self.dropouts.is_empty()
            && self.link_loss.iter().all(|&l| l == 0.0)
    }

    /// Loss probability of `mote`'s link to the basestation.
    pub fn link_loss_of(&self, mote: u16) -> f64 {
        self.link_loss.get(mote as usize).copied().unwrap_or(self.loss_rate)
    }

    /// Whether `mote` is up during `epoch`.
    pub fn online(&self, mote: u16, epoch: usize) -> bool {
        !self.dropouts.iter().any(|d| d.mote == mote && d.from <= epoch && epoch < d.until)
    }

    /// The deterministic uniform variate in `[0, 1)` governing one
    /// fault decision. Pure in all arguments: evaluation order cannot
    /// change any outcome.
    pub fn roll(
        &self,
        stream: FaultStream,
        mote: u16,
        epoch: usize,
        attempt: u32,
        extra: u64,
    ) -> f64 {
        let mut h = self.seed ^ 0xA076_1D64_78BD_642F;
        for w in [stream.tag(), mote as u64, epoch as u64, attempt as u64, extra] {
            h = splitmix64(h ^ w);
        }
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether attempt `attempt` of a packet on `stream` from/to `mote`
    /// in `epoch` gets through. With a zero loss rate this is always
    /// true — no hash is even consulted, keeping the lossless path
    /// branch-identical to the pre-fault simulator.
    pub fn delivered(&self, stream: FaultStream, mote: u16, epoch: usize, attempt: u32) -> bool {
        let p = self.link_loss_of(mote);
        if p <= 0.0 {
            return true;
        }
        self.roll(stream, mote, epoch, attempt, 0) >= p
    }

    /// Whether one read of `attr` on `mote` succeeds.
    pub fn sensor_ok(&self, mote: u16, epoch: usize, attr: AttrId, attempt: u32) -> bool {
        if self.sensing_fail_rate <= 0.0 {
            return true;
        }
        self.roll(FaultStream::Sensing, mote, epoch, attempt, attr as u64 + 1)
            >= self.sensing_fail_rate
    }

    /// Truncated binary exponential backoff: slots waited before retry
    /// `retry` (1-based), `backoff_base · 2^(retry−1)`, capped at 1024
    /// slots so late retries cannot overflow.
    pub fn backoff_slots(&self, retry: u32) -> u64 {
        let exp = retry.saturating_sub(1).min(10);
        ((self.backoff_base.max(1) as u64) << exp).min(1024)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of pushing one packet through the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Transmission attempts made (each one is charged radio energy).
    pub attempts: u32,
    /// Whether any attempt got through before the cap.
    pub delivered: bool,
    /// Total backoff slots waited between attempts.
    pub backoff_slots: u64,
}

/// Pre-hoisted `sensornet.fault.*` instruments (see `DESIGN.md` §9).
#[derive(Debug)]
pub struct FaultStats {
    /// `sensornet.fault.diss.attempts` / `.lost` / `.timeouts`.
    pub diss_attempts: Counter,
    /// Dissemination attempts that were lost on air.
    pub diss_lost: Counter,
    /// Motes whose dissemination exhausted its per-epoch attempts.
    pub diss_timeouts: Counter,
    /// `sensornet.fault.result.attempts` / `.lost` / `.timeouts`.
    pub result_attempts: Counter,
    /// Result attempts lost on air.
    pub result_lost: Counter,
    /// Result packets dropped after exhausting the attempt cap.
    pub result_timeouts: Counter,
    /// `sensornet.fault.sample.attempts` / `.lost` / `.timeouts`.
    pub sample_attempts: Counter,
    /// Sample attempts lost on air.
    pub sample_lost: Counter,
    /// Sample packets dropped after exhausting the attempt cap.
    pub sample_timeouts: Counter,
    /// `sensornet.fault.sensing.failures` — individual failed reads.
    pub sensing_failures: Counter,
    /// `sensornet.fault.sensing.aborts` — tuples abandoned because one
    /// attribute could not be read within the attempt cap.
    pub sensing_aborts: Counter,
    /// `sensornet.fault.offline_epochs` — mote-epochs lost to dropouts.
    pub offline_epochs: Counter,
    /// `sensornet.fault.backoff_slots` — total CSMA slots waited.
    pub backoff_slots: Counter,
}

impl FaultStats {
    /// Registers the fault instruments on `rec`.
    pub fn new(rec: &Recorder) -> Self {
        FaultStats {
            diss_attempts: rec.counter("sensornet.fault.diss.attempts"),
            diss_lost: rec.counter("sensornet.fault.diss.lost"),
            diss_timeouts: rec.counter("sensornet.fault.diss.timeouts"),
            result_attempts: rec.counter("sensornet.fault.result.attempts"),
            result_lost: rec.counter("sensornet.fault.result.lost"),
            result_timeouts: rec.counter("sensornet.fault.result.timeouts"),
            sample_attempts: rec.counter("sensornet.fault.sample.attempts"),
            sample_lost: rec.counter("sensornet.fault.sample.lost"),
            sample_timeouts: rec.counter("sensornet.fault.sample.timeouts"),
            sensing_failures: rec.counter("sensornet.fault.sensing.failures"),
            sensing_aborts: rec.counter("sensornet.fault.sensing.aborts"),
            offline_epochs: rec.counter("sensornet.fault.offline_epochs"),
            backoff_slots: rec.counter("sensornet.fault.backoff_slots"),
        }
    }

    /// Registers the service-loop flavor of the fault instruments
    /// (`serve.fault.*`), so a faulty serve run and a faulty simulate
    /// run in the same recorder never alias each other's counters. The
    /// field shape is identical — [`attempt_packet`] and
    /// [`FaultySource`] work against either flavor unchanged.
    pub fn serve(rec: &Recorder) -> Self {
        FaultStats {
            diss_attempts: rec.counter("serve.fault.diss.attempts"),
            diss_lost: rec.counter("serve.fault.diss.lost"),
            diss_timeouts: rec.counter("serve.fault.diss.timeouts"),
            result_attempts: rec.counter("serve.fault.result.attempts"),
            result_lost: rec.counter("serve.fault.result.lost"),
            result_timeouts: rec.counter("serve.fault.result.timeouts"),
            sample_attempts: rec.counter("serve.fault.sample.attempts"),
            sample_lost: rec.counter("serve.fault.sample.lost"),
            sample_timeouts: rec.counter("serve.fault.sample.timeouts"),
            sensing_failures: rec.counter("serve.fault.sensing.failures"),
            sensing_aborts: rec.counter("serve.fault.sensing.aborts"),
            offline_epochs: rec.counter("serve.fault.offline_epochs"),
            backoff_slots: rec.counter("serve.fault.backoff_slots"),
        }
    }

    fn stream(&self, s: FaultStream) -> (&Counter, &Counter, &Counter) {
        match s {
            FaultStream::Dissemination => {
                (&self.diss_attempts, &self.diss_lost, &self.diss_timeouts)
            }
            FaultStream::Result => {
                (&self.result_attempts, &self.result_lost, &self.result_timeouts)
            }
            FaultStream::Sample => {
                (&self.sample_attempts, &self.sample_lost, &self.sample_timeouts)
            }
            FaultStream::Sensing => {
                unreachable!("sensing faults are counted via the sensing_* instruments")
            }
            FaultStream::Crash => {
                unreachable!("crashes are counted via the recovery.* instruments, not retried")
            }
        }
    }
}

/// Runs the bounded retry + backoff loop for one packet, recording
/// attempts/losses/timeouts under `stream`'s taxonomy. The caller
/// charges radio energy once per returned attempt.
pub fn attempt_packet(
    faults: &FaultModel,
    stream: FaultStream,
    mote: u16,
    epoch: usize,
    stats: &FaultStats,
) -> Delivery {
    let (attempts_c, lost_c, timeout_c) = stats.stream(stream);
    let mut slots = 0u64;
    for attempt in 0..faults.max_attempts {
        attempts_c.incr(1);
        if faults.delivered(stream, mote, epoch, attempt) {
            return Delivery { attempts: attempt + 1, delivered: true, backoff_slots: slots };
        }
        lost_c.incr(1);
        if attempt + 1 < faults.max_attempts {
            let wait = faults.backoff_slots(attempt + 1);
            slots += wait;
            stats.backoff_slots.incr(wait);
        }
    }
    timeout_c.incr(1);
    Delivery { attempts: faults.max_attempts, delivered: false, backoff_slots: slots }
}

/// A [`TupleSource`] adapter that injects sensing failures: each failed
/// read is retried (re-charging sensing energy through the inner
/// metered source — the sensor really did draw power) up to the attempt
/// cap. If an attribute cannot be read at all, the source is marked
/// *aborted* and the epoch's tuple must be discarded by the caller.
pub struct FaultySource<'f, S: TupleSource> {
    inner: S,
    faults: &'f FaultModel,
    stats: &'f FaultStats,
    mote: u16,
    epoch: usize,
    aborted: bool,
    aborted_attrs: u64,
}

impl<'f, S: TupleSource> FaultySource<'f, S> {
    /// Wraps `inner` for one mote-epoch.
    pub fn new(
        inner: S,
        faults: &'f FaultModel,
        stats: &'f FaultStats,
        mote: u16,
        epoch: usize,
    ) -> Self {
        FaultySource { inner, faults, stats, mote, epoch, aborted: false, aborted_attrs: 0 }
    }

    /// True once any acquisition exhausted its retries.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Bitmask of attribute ids whose acquisition aborted (bit `a` for
    /// attribute `a`, ids ≥ 64 folded onto bit 63 — schemas are far
    /// smaller). The multi-query service uses this to discard only the
    /// tuples whose own chains touched a failed sensor, while queries
    /// that never demanded it keep their epoch.
    pub fn aborted_mask(&self) -> u64 {
        self.aborted_attrs
    }
}

impl<S: TupleSource> TupleSource for FaultySource<'_, S> {
    fn acquire(&mut self, attr: AttrId) -> u16 {
        let mut attempt = 0u32;
        loop {
            let v = self.inner.acquire(attr);
            if self.faults.sensor_ok(self.mote, self.epoch, attr, attempt) {
                return v;
            }
            self.stats.sensing_failures.incr(1);
            attempt += 1;
            if attempt >= self.faults.max_attempts {
                self.stats.sensing_aborts.incr(1);
                self.aborted = true;
                self.aborted_attrs |= 1u64 << (attr as u32).min(63);
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_model_never_faults() {
        let f = FaultModel::none();
        assert!(f.is_lossless());
        for e in 0..50 {
            assert!(f.delivered(FaultStream::Result, 3, e, 0));
            assert!(f.sensor_ok(3, e, 1, 0));
            assert!(f.online(3, e));
        }
    }

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        let a = FaultModel::lossy(42, 0.3);
        let b = FaultModel::lossy(42, 0.3);
        let c = FaultModel::lossy(43, 0.3);
        let mut diverged = false;
        for e in 0..64 {
            let ra = a.roll(FaultStream::Result, 1, e, 0, 0);
            assert_eq!(ra.to_bits(), b.roll(FaultStream::Result, 1, e, 0, 0).to_bits());
            assert!((0.0..1.0).contains(&ra));
            diverged |= ra.to_bits() != c.roll(FaultStream::Result, 1, e, 0, 0).to_bits();
        }
        assert!(diverged, "different seeds must behave differently");
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let f = FaultModel::lossy(7, 0.25);
        let lost = (0..4000).filter(|&e| !f.delivered(FaultStream::Result, 0, e, 0)).count();
        let frac = lost as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "observed loss {frac}");
    }

    #[test]
    fn crash_stream_is_independent_of_packet_streams() {
        // Same (mote, epoch, attempt) inputs on different streams must
        // draw independent variates — enabling basestation crashes can
        // never change which packets a run drops.
        let f = FaultModel::lossy(99, 0.3);
        let mut differs = false;
        for e in 0..32 {
            let crash = f.roll(FaultStream::Crash, 0, e, 0, 0);
            let result = f.roll(FaultStream::Result, 0, e, 0, 0);
            assert!((0.0..1.0).contains(&crash));
            differs |= crash.to_bits() != result.to_bits();
        }
        assert!(differs, "crash stream must not alias the result stream");
    }

    #[test]
    fn dropout_schedule_and_link_overrides() {
        let f = FaultModel::lossy(1, 0.0).with_dropout(2, 5, 8).with_link_loss(1, 1.0);
        assert!(!f.is_lossless());
        assert!(f.online(2, 4) && !f.online(2, 5) && !f.online(2, 7) && f.online(2, 8));
        assert!(f.online(1, 6), "link loss is not an outage");
        assert!(!f.delivered(FaultStream::Result, 1, 0, 0), "loss 1.0 drops everything");
        assert!(f.delivered(FaultStream::Result, 0, 0, 0), "other links keep the base rate");
    }

    #[test]
    fn retry_respects_cap_and_backoff_doubles() {
        let f = FaultModel::lossy(9, 1.0).with_max_attempts(5);
        let rec = Recorder::disabled();
        let stats = FaultStats::new(&rec);
        let d = attempt_packet(&f, FaultStream::Result, 0, 0, &stats);
        assert!(!d.delivered);
        assert_eq!(d.attempts, 5);
        // base 2: retries wait 2 + 4 + 8 + 16 slots (no wait after the
        // final attempt).
        assert_eq!(d.backoff_slots, 2 + 4 + 8 + 16);
        assert_eq!(f.backoff_slots(1), 2);
        assert_eq!(f.backoff_slots(2), 4);
        assert_eq!(f.backoff_slots(30), 1024, "backoff is capped");
    }

    #[test]
    fn zero_loss_delivers_first_try() {
        let f = FaultModel::lossy(1234, 0.0);
        let rec = Recorder::disabled();
        let stats = FaultStats::new(&rec);
        let d = attempt_packet(&f, FaultStream::Dissemination, 6, 3, &stats);
        assert_eq!(d, Delivery { attempts: 1, delivered: true, backoff_slots: 0 });
    }

    #[test]
    fn faulty_source_retries_and_aborts() {
        struct Fixed(u32);
        impl TupleSource for Fixed {
            fn acquire(&mut self, _: AttrId) -> u16 {
                self.0 += 1;
                7
            }
        }
        let rec = Recorder::disabled();
        let stats = FaultStats::new(&rec);
        // Certain sensing failure: every read fails, cap 3.
        let f = FaultModel::lossy(5, 0.0).with_sensing_failures(1.0).with_max_attempts(3);
        let mut src = FaultySource::new(Fixed(0), &f, &stats, 0, 0);
        assert_eq!(src.acquire(0), 7);
        assert!(src.aborted());
        assert_eq!(src.inner.0, 3, "each retry re-reads (and re-charges) the sensor");

        // No sensing failures: transparent pass-through.
        let f = FaultModel::lossy(5, 0.5);
        let mut src = FaultySource::new(Fixed(0), &f, &stats, 0, 0);
        assert_eq!(src.acquire(0), 7);
        assert!(!src.aborted());
        assert_eq!(src.inner.0, 1);
    }
}
