//! Byte-code plan interpreter.
//!
//! Motes receive a plan as the compact wire encoding of
//! [`acqp_core::Plan::encode`] and execute it *directly from the bytes*:
//! no tree materialization — matching the "minimal computational power"
//! execution story of §2.5. Branching to the high side of a split skips
//! over the low subtree with a structural scan. Acquisition accounting
//! and leaf evaluation are the shared scalar kernel of
//! [`acqp_core::exec`], so the interpreter cannot drift from the tree
//! executor (or from the vectorized path proven equal to it).

use acqp_core::costmodel::CostModel;
use acqp_core::exec::{eval_seq_leaf, TupleState};
use acqp_core::{Error, ExecOutcome, Query, Result, Schema, TupleSource};

/// Executes the wire-encoded plan for one tuple, charging acquisition
/// costs from `schema` exactly like [`acqp_core::execute`] does for the
/// decoded tree. Acquisition state and leaf evaluation go through the
/// shared scalar kernel ([`TupleState`] / [`eval_seq_leaf`]) — the seed
/// interpreter duplicated that logic, which let the paths drift.
/// Sequential bodies are validated eagerly: a leaf naming an
/// out-of-range predicate is rejected before any of it runs.
pub fn execute_wire(
    bytes: &[u8],
    query: &Query,
    schema: &Schema,
    src: &mut impl TupleSource,
) -> Result<ExecOutcome> {
    let model = CostModel::PerAttribute;
    let mut st = TupleState::new(schema.len());
    let mut pos = 0usize;
    loop {
        let tag = *bytes.get(pos).ok_or(Error::BadWireFormat { offset: pos, what: "truncated" })?;
        match tag {
            0x00 | 0x01 => {
                return Ok(st.into_outcome(tag == 0x01));
            }
            0x02 => {
                let len = *bytes
                    .get(pos + 1)
                    .ok_or(Error::BadWireFormat { offset: pos + 1, what: "truncated seq" })?
                    as usize;
                let body = bytes
                    .get(pos + 2..pos + 2 + len)
                    .ok_or(Error::BadWireFormat { offset: pos + 2, what: "truncated seq body" })?;
                let mut order = Vec::with_capacity(body.len());
                for &pb in body {
                    let j = pb as usize;
                    if j >= query.len() {
                        return Err(Error::BadWireFormat {
                            offset: pos,
                            what: "predicate index out of range",
                        });
                    }
                    order.push(j);
                }
                let verdict = eval_seq_leaf(&mut st, &order, query, schema, &model, src, None);
                return Ok(st.into_outcome(verdict));
            }
            0x03 => {
                let hdr = bytes
                    .get(pos + 1..pos + 4)
                    .ok_or(Error::BadWireFormat { offset: pos + 1, what: "truncated split" })?;
                let attr = hdr[0] as usize;
                if attr >= schema.len() {
                    return Err(Error::BadWireFormat {
                        offset: pos + 1,
                        what: "attr out of range",
                    });
                }
                let cut = u16::from_le_bytes([hdr[1], hdr[2]]);
                let v = st.fetch(attr, schema, &model, src, None);
                if v < cut {
                    pos += 4;
                } else {
                    pos = skip_subtree(bytes, pos + 4)?;
                }
            }
            _ => return Err(Error::BadWireFormat { offset: pos, what: "unknown tag" }),
        }
    }
}

/// Returns the byte offset just past the subtree starting at `pos`.
pub fn skip_subtree(bytes: &[u8], pos: usize) -> Result<usize> {
    let tag = *bytes.get(pos).ok_or(Error::BadWireFormat { offset: pos, what: "truncated" })?;
    match tag {
        0x00 | 0x01 => Ok(pos + 1),
        0x02 => {
            let len = *bytes
                .get(pos + 1)
                .ok_or(Error::BadWireFormat { offset: pos + 1, what: "truncated seq" })?
                as usize;
            let end = pos + 2 + len;
            if end > bytes.len() {
                return Err(Error::BadWireFormat { offset: pos, what: "truncated seq body" });
            }
            Ok(end)
        }
        0x03 => {
            if pos + 4 > bytes.len() {
                return Err(Error::BadWireFormat { offset: pos, what: "truncated split" });
            }
            let after_lo = skip_subtree(bytes, pos + 4)?;
            skip_subtree(bytes, after_lo)
        }
        _ => Err(Error::BadWireFormat { offset: pos, what: "unknown tag" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::{execute, Attribute, Dataset, Plan, Pred, RowSource, SeqOrder};

    fn setup() -> (Schema, Dataset, Query) {
        let schema = acqp_core::Schema::new(vec![
            Attribute::new("a", 8, 10.0),
            Attribute::new("b", 8, 20.0),
            Attribute::new("t", 8, 1.0),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> =
            (0..64u16).map(|i| vec![i % 8, (i / 8) % 8, (i * 3) % 8]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 2, 5), Pred::not_in_range(1, 3, 6)]).unwrap();
        (schema, data, query)
    }

    fn plans() -> Vec<Plan> {
        vec![
            Plan::pass(),
            Plan::fail(),
            Plan::Seq(SeqOrder::new(vec![0, 1])),
            Plan::Seq(SeqOrder::new(vec![1, 0])),
            Plan::split(
                2,
                4,
                Plan::Seq(SeqOrder::new(vec![0, 1])),
                Plan::Seq(SeqOrder::new(vec![1, 0])),
            ),
            Plan::split(
                2,
                3,
                Plan::split(0, 3, Plan::fail(), Plan::Seq(SeqOrder::new(vec![0, 1]))),
                Plan::split(
                    1,
                    5,
                    Plan::Seq(SeqOrder::new(vec![1, 0])),
                    Plan::Seq(SeqOrder::new(vec![0])),
                ),
            ),
        ]
    }

    #[test]
    fn interpreter_matches_tree_executor_on_every_row() {
        let (schema, data, query) = setup();
        for plan in plans() {
            let wire = plan.encode();
            for row in 0..data.len() {
                let tree = execute(&plan, &query, &schema, &mut RowSource::new(&data, row));
                let byte =
                    execute_wire(&wire, &query, &schema, &mut RowSource::new(&data, row)).unwrap();
                assert_eq!(tree.verdict, byte.verdict, "row {row} plan {plan:?}");
                assert_eq!(tree.cost, byte.cost);
                assert_eq!(tree.acquired, byte.acquired);
            }
        }
    }

    #[test]
    fn skip_subtree_spans() {
        let plan = plans().pop().unwrap();
        let wire = plan.encode();
        // Skipping the whole tree lands exactly at the end.
        assert_eq!(skip_subtree(&wire, 0).unwrap(), wire.len());
    }

    #[test]
    fn garbage_rejected() {
        let (schema, data, query) = setup();
        let mut src = RowSource::new(&data, 0);
        assert!(execute_wire(&[], &query, &schema, &mut src).is_err());
        assert!(execute_wire(&[0x07], &query, &schema, &mut src).is_err());
        // Split referencing an out-of-schema attribute.
        assert!(execute_wire(&[0x03, 99, 0, 0, 0x00, 0x01], &query, &schema, &mut src).is_err());
        // Seq referencing an out-of-range predicate.
        assert!(execute_wire(&[0x02, 1, 9], &query, &schema, &mut src).is_err());
    }
}
