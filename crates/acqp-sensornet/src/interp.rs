//! Byte-code plan interpreter.
//!
//! Motes receive a plan as the compact wire encoding of
//! [`acqp_core::Plan::encode`] and execute it *directly from the bytes*:
//! no tree materialization — matching the "minimal computational power"
//! execution story of §2.5. Branching to the high side of a split skips
//! over the low subtree with a structural scan. Acquisition accounting
//! and leaf evaluation are the shared scalar kernel of
//! [`acqp_core::exec`], so the interpreter cannot drift from the tree
//! executor (or from the vectorized path proven equal to it).

use acqp_core::costmodel::CostModel;
use acqp_core::exec::{eval_seq_leaf, TupleState};
use acqp_core::{Error, ExecOutcome, Query, Result, Schema, TupleSource};

/// Executes the wire-encoded plan for one tuple, charging acquisition
/// costs from `schema` exactly like [`acqp_core::execute`] does for the
/// decoded tree. Acquisition state and leaf evaluation go through the
/// shared scalar kernel ([`TupleState`] / [`eval_seq_leaf`]) — the seed
/// interpreter duplicated that logic, which let the paths drift.
/// Sequential bodies are validated eagerly: a leaf naming an
/// out-of-range predicate is rejected before any of it runs.
pub fn execute_wire(
    bytes: &[u8],
    query: &Query,
    schema: &Schema,
    src: &mut impl TupleSource,
) -> Result<ExecOutcome> {
    let model = CostModel::PerAttribute;
    let mut st = TupleState::new(schema.len());
    let mut pos = 0usize;
    loop {
        let tag = *bytes.get(pos).ok_or(Error::BadWireFormat { offset: pos, what: "truncated" })?;
        match tag {
            0x00 | 0x01 => {
                return Ok(st.into_outcome(tag == 0x01));
            }
            0x02 => {
                let len = *bytes
                    .get(pos + 1)
                    .ok_or(Error::BadWireFormat { offset: pos + 1, what: "truncated seq" })?
                    as usize;
                let body = bytes
                    .get(pos + 2..pos + 2 + len)
                    .ok_or(Error::BadWireFormat { offset: pos + 2, what: "truncated seq body" })?;
                let mut order = Vec::with_capacity(body.len());
                for &pb in body {
                    let j = pb as usize;
                    if j >= query.len() {
                        return Err(Error::BadWireFormat {
                            offset: pos,
                            what: "predicate index out of range",
                        });
                    }
                    order.push(j);
                }
                let verdict = eval_seq_leaf(&mut st, &order, query, schema, &model, src, None);
                return Ok(st.into_outcome(verdict));
            }
            0x03 => {
                let Some(&[a, c0, c1]) = bytes.get(pos + 1..pos + 4) else {
                    return Err(Error::BadWireFormat { offset: pos + 1, what: "truncated split" });
                };
                let attr = a as usize;
                if attr >= schema.len() {
                    return Err(Error::BadWireFormat {
                        offset: pos + 1,
                        what: "attr out of range",
                    });
                }
                let cut = u16::from_le_bytes([c0, c1]);
                let v = st.fetch(attr, schema, &model, src, None);
                if v < cut {
                    pos += 4;
                } else {
                    pos = skip_subtree(bytes, pos + 4)?;
                }
            }
            _ => return Err(Error::BadWireFormat { offset: pos, what: "unknown tag" }),
        }
    }
}

/// Executes a **verified** wire plan for one tuple: the checked-free
/// fast path. The caller must hold an `acqp-verify` certificate for
/// `(bytes, query, schema)` — structural and semantic validity are
/// assumed, so the per-tuple predicate-index validation and the
/// per-leaf order allocation of [`execute_wire`] are hoisted out
/// entirely (the order is staged in a stack scratch instead). The
/// function is still *total*: on unverified garbage it degrades to a
/// reject verdict — never a panic, never an acquisition outside the
/// schema — but its verdict on such bytes is otherwise unspecified.
pub fn execute_wire_verified(
    bytes: &[u8],
    query: &Query,
    schema: &Schema,
    src: &mut impl TupleSource,
) -> ExecOutcome {
    let model = CostModel::PerAttribute;
    let mut st = TupleState::new(schema.len());
    // Seq bodies are length-prefixed by a u8, so 256 slots always fit.
    let mut order = [0usize; 256];
    let mut pos = 0usize;
    loop {
        match bytes.get(pos).copied() {
            Some(0x01) => return st.into_outcome(true),
            Some(0x02) => {
                let len = bytes.get(pos + 1).copied().unwrap_or(0) as usize;
                let Some(body) = bytes.get(pos + 2..pos + 2 + len) else {
                    return st.into_outcome(false);
                };
                for (slot, &pb) in order.iter_mut().zip(body) {
                    let j = pb as usize;
                    // Unreachable under a certificate; on garbage the
                    // guard keeps the path total instead of letting
                    // `query.pred(j)` panic downstream.
                    if j >= query.len() {
                        return st.into_outcome(false);
                    }
                    *slot = j;
                }
                let verdict =
                    eval_seq_leaf(&mut st, &order[..len], query, schema, &model, src, None);
                return st.into_outcome(verdict);
            }
            Some(0x03) => {
                let Some(&[a, c0, c1]) = bytes.get(pos + 1..pos + 4) else {
                    return st.into_outcome(false);
                };
                let attr = a as usize;
                if attr >= schema.len() {
                    return st.into_outcome(false);
                }
                let cut = u16::from_le_bytes([c0, c1]);
                let v = st.fetch(attr, schema, &model, src, None);
                if v < cut {
                    pos += 4;
                } else {
                    pos = skip_verified(bytes, pos + 4);
                }
            }
            // 0x00, an out-of-grammar tag, or truncation: reject. Only
            // 0x00 is reachable under a certificate.
            _ => return st.into_outcome(false),
        }
    }
}

/// Offset just past the subtree at `pos`, assuming verified bytes.
/// Iterative (like the checked version) and total: on garbage it runs
/// off the end and returns `bytes.len()`, which the caller treats as a
/// reject leaf.
fn skip_verified(bytes: &[u8], mut pos: usize) -> usize {
    let mut open = 1usize;
    while open > 0 {
        match bytes.get(pos).copied() {
            Some(0x00) | Some(0x01) => {
                pos += 1;
                open -= 1;
            }
            Some(0x02) => {
                let len = bytes.get(pos + 1).copied().unwrap_or(0) as usize;
                pos += 2 + len;
                open -= 1;
            }
            Some(0x03) => {
                pos += 4;
                open += 1;
            }
            _ => return bytes.len(),
        }
    }
    pos
}

/// Returns the byte offset just past the subtree starting at `pos`.
/// Iterative: a split defers one extra subtree instead of recursing, so
/// adversarially deep split chains cannot overflow the call stack.
pub fn skip_subtree(bytes: &[u8], mut pos: usize) -> Result<usize> {
    let mut open = 1usize;
    while open > 0 {
        let tag = *bytes.get(pos).ok_or(Error::BadWireFormat { offset: pos, what: "truncated" })?;
        match tag {
            0x00 | 0x01 => {
                pos += 1;
                open -= 1;
            }
            0x02 => {
                let len = *bytes
                    .get(pos + 1)
                    .ok_or(Error::BadWireFormat { offset: pos + 1, what: "truncated seq" })?
                    as usize;
                let end = pos + 2 + len;
                if end > bytes.len() {
                    return Err(Error::BadWireFormat { offset: pos, what: "truncated seq body" });
                }
                pos = end;
                open -= 1;
            }
            0x03 => {
                if pos + 4 > bytes.len() {
                    return Err(Error::BadWireFormat { offset: pos, what: "truncated split" });
                }
                pos += 4;
                open += 1;
            }
            _ => return Err(Error::BadWireFormat { offset: pos, what: "unknown tag" }),
        }
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::{execute, Attribute, Dataset, Plan, Pred, RowSource, SeqOrder};

    fn setup() -> (Schema, Dataset, Query) {
        let schema = acqp_core::Schema::new(vec![
            Attribute::new("a", 8, 10.0),
            Attribute::new("b", 8, 20.0),
            Attribute::new("t", 8, 1.0),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> =
            (0..64u16).map(|i| vec![i % 8, (i / 8) % 8, (i * 3) % 8]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 2, 5), Pred::not_in_range(1, 3, 6)]).unwrap();
        (schema, data, query)
    }

    fn plans() -> Vec<Plan> {
        vec![
            Plan::pass(),
            Plan::fail(),
            Plan::Seq(SeqOrder::new(vec![0, 1])),
            Plan::Seq(SeqOrder::new(vec![1, 0])),
            Plan::split(
                2,
                4,
                Plan::Seq(SeqOrder::new(vec![0, 1])),
                Plan::Seq(SeqOrder::new(vec![1, 0])),
            ),
            Plan::split(
                2,
                3,
                Plan::split(0, 3, Plan::fail(), Plan::Seq(SeqOrder::new(vec![0, 1]))),
                Plan::split(
                    1,
                    5,
                    Plan::Seq(SeqOrder::new(vec![1, 0])),
                    Plan::Seq(SeqOrder::new(vec![0])),
                ),
            ),
        ]
    }

    #[test]
    fn interpreter_matches_tree_executor_on_every_row() {
        let (schema, data, query) = setup();
        for plan in plans() {
            let wire = plan.encode();
            for row in 0..data.len() {
                let tree = execute(&plan, &query, &schema, &mut RowSource::new(&data, row));
                let byte =
                    execute_wire(&wire, &query, &schema, &mut RowSource::new(&data, row)).unwrap();
                assert_eq!(tree.verdict, byte.verdict, "row {row} plan {plan:?}");
                assert_eq!(tree.cost, byte.cost);
                assert_eq!(tree.acquired, byte.acquired);
            }
        }
    }

    #[test]
    fn verified_path_matches_checked_path_on_every_row() {
        let (schema, data, query) = setup();
        for plan in plans() {
            let wire = plan.encode();
            for row in 0..data.len() {
                let checked =
                    execute_wire(&wire, &query, &schema, &mut RowSource::new(&data, row)).unwrap();
                let fast =
                    execute_wire_verified(&wire, &query, &schema, &mut RowSource::new(&data, row));
                assert_eq!(checked.verdict, fast.verdict, "row {row} plan {plan:?}");
                assert_eq!(checked.cost, fast.cost);
                assert_eq!(checked.acquired, fast.acquired);
            }
        }
    }

    #[test]
    fn skip_subtree_spans() {
        let plan = plans().pop().unwrap();
        let wire = plan.encode();
        // Skipping the whole tree lands exactly at the end.
        assert_eq!(skip_subtree(&wire, 0).unwrap(), wire.len());
    }

    #[test]
    fn skip_subtree_is_iterative_on_deep_chains() {
        // 50_000 nested splits would overflow the stack under the old
        // recursive scan.
        let mut wire = Vec::new();
        for _ in 0..50_000 {
            wire.extend_from_slice(&[0x03, 0, 1, 0]);
        }
        wire.push(0x01);
        wire.extend(std::iter::repeat_n(0x00, 50_000));
        assert_eq!(skip_subtree(&wire, 0).unwrap(), wire.len());
    }

    #[test]
    fn garbage_rejected() {
        let (schema, data, query) = setup();
        let mut src = RowSource::new(&data, 0);
        assert!(execute_wire(&[], &query, &schema, &mut src).is_err());
        assert!(execute_wire(&[0x07], &query, &schema, &mut src).is_err());
        // Split referencing an out-of-schema attribute.
        assert!(execute_wire(&[0x03, 99, 0, 0, 0x00, 0x01], &query, &schema, &mut src).is_err());
        // Seq referencing an out-of-range predicate.
        assert!(execute_wire(&[0x02, 1, 9], &query, &schema, &mut src).is_err());
    }
}
