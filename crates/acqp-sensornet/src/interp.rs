//! Byte-code plan interpreter.
//!
//! Motes receive a plan as the compact wire encoding of
//! [`acqp_core::Plan::encode`] and execute it *directly from the bytes*:
//! no tree materialization, no heap — matching the "minimal
//! computational power" execution story of §2.5. Branching to the high
//! side of a split skips over the low subtree with a structural scan.

use acqp_core::{Error, ExecOutcome, Query, Result, Schema, TupleSource};

/// Executes the wire-encoded plan for one tuple, charging acquisition
/// costs from `schema` exactly like [`acqp_core::execute`] does for the
/// decoded tree.
pub fn execute_wire(
    bytes: &[u8],
    query: &Query,
    schema: &Schema,
    src: &mut impl TupleSource,
) -> Result<ExecOutcome> {
    let mut cache: Vec<Option<u16>> = vec![None; schema.len()];
    let mut cost = 0.0;
    let mut acquired = Vec::new();
    let mut pos = 0usize;
    loop {
        let tag = *bytes.get(pos).ok_or(Error::BadWireFormat { offset: pos, what: "truncated" })?;
        match tag {
            0x00 | 0x01 => {
                return Ok(ExecOutcome { verdict: tag == 0x01, cost, acquired });
            }
            0x02 => {
                let len = *bytes
                    .get(pos + 1)
                    .ok_or(Error::BadWireFormat { offset: pos + 1, what: "truncated seq" })?
                    as usize;
                let body = bytes
                    .get(pos + 2..pos + 2 + len)
                    .ok_or(Error::BadWireFormat { offset: pos + 2, what: "truncated seq body" })?;
                for &pb in body {
                    let j = pb as usize;
                    if j >= query.len() {
                        return Err(Error::BadWireFormat {
                            offset: pos,
                            what: "predicate index out of range",
                        });
                    }
                    let p = query.pred(j);
                    let v = fetch(p.attr(), schema, src, &mut cache, &mut cost, &mut acquired);
                    if !p.eval(v) {
                        return Ok(ExecOutcome { verdict: false, cost, acquired });
                    }
                }
                return Ok(ExecOutcome { verdict: true, cost, acquired });
            }
            0x03 => {
                let hdr = bytes
                    .get(pos + 1..pos + 4)
                    .ok_or(Error::BadWireFormat { offset: pos + 1, what: "truncated split" })?;
                let attr = hdr[0] as usize;
                if attr >= schema.len() {
                    return Err(Error::BadWireFormat {
                        offset: pos + 1,
                        what: "attr out of range",
                    });
                }
                let cut = u16::from_le_bytes([hdr[1], hdr[2]]);
                let v = fetch(attr, schema, src, &mut cache, &mut cost, &mut acquired);
                if v < cut {
                    pos += 4;
                } else {
                    pos = skip_subtree(bytes, pos + 4)?;
                }
            }
            _ => return Err(Error::BadWireFormat { offset: pos, what: "unknown tag" }),
        }
    }
}

/// Returns the byte offset just past the subtree starting at `pos`.
pub fn skip_subtree(bytes: &[u8], pos: usize) -> Result<usize> {
    let tag = *bytes.get(pos).ok_or(Error::BadWireFormat { offset: pos, what: "truncated" })?;
    match tag {
        0x00 | 0x01 => Ok(pos + 1),
        0x02 => {
            let len = *bytes
                .get(pos + 1)
                .ok_or(Error::BadWireFormat { offset: pos + 1, what: "truncated seq" })?
                as usize;
            let end = pos + 2 + len;
            if end > bytes.len() {
                return Err(Error::BadWireFormat { offset: pos, what: "truncated seq body" });
            }
            Ok(end)
        }
        0x03 => {
            if pos + 4 > bytes.len() {
                return Err(Error::BadWireFormat { offset: pos, what: "truncated split" });
            }
            let after_lo = skip_subtree(bytes, pos + 4)?;
            skip_subtree(bytes, after_lo)
        }
        _ => Err(Error::BadWireFormat { offset: pos, what: "unknown tag" }),
    }
}

#[inline]
fn fetch(
    attr: usize,
    schema: &Schema,
    src: &mut impl TupleSource,
    cache: &mut [Option<u16>],
    cost: &mut f64,
    acquired: &mut Vec<usize>,
) -> u16 {
    if let Some(v) = cache[attr] {
        return v;
    }
    let v = src.acquire(attr);
    cache[attr] = Some(v);
    *cost += schema.cost(attr);
    acquired.push(attr);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::{execute, Attribute, Dataset, Plan, Pred, RowSource, SeqOrder};

    fn setup() -> (Schema, Dataset, Query) {
        let schema = acqp_core::Schema::new(vec![
            Attribute::new("a", 8, 10.0),
            Attribute::new("b", 8, 20.0),
            Attribute::new("t", 8, 1.0),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> =
            (0..64u16).map(|i| vec![i % 8, (i / 8) % 8, (i * 3) % 8]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 2, 5), Pred::not_in_range(1, 3, 6)]).unwrap();
        (schema, data, query)
    }

    fn plans() -> Vec<Plan> {
        vec![
            Plan::pass(),
            Plan::fail(),
            Plan::Seq(SeqOrder::new(vec![0, 1])),
            Plan::Seq(SeqOrder::new(vec![1, 0])),
            Plan::split(
                2,
                4,
                Plan::Seq(SeqOrder::new(vec![0, 1])),
                Plan::Seq(SeqOrder::new(vec![1, 0])),
            ),
            Plan::split(
                2,
                3,
                Plan::split(0, 3, Plan::fail(), Plan::Seq(SeqOrder::new(vec![0, 1]))),
                Plan::split(
                    1,
                    5,
                    Plan::Seq(SeqOrder::new(vec![1, 0])),
                    Plan::Seq(SeqOrder::new(vec![0])),
                ),
            ),
        ]
    }

    #[test]
    fn interpreter_matches_tree_executor_on_every_row() {
        let (schema, data, query) = setup();
        for plan in plans() {
            let wire = plan.encode();
            for row in 0..data.len() {
                let tree = execute(&plan, &query, &schema, &mut RowSource::new(&data, row));
                let byte =
                    execute_wire(&wire, &query, &schema, &mut RowSource::new(&data, row)).unwrap();
                assert_eq!(tree.verdict, byte.verdict, "row {row} plan {plan:?}");
                assert_eq!(tree.cost, byte.cost);
                assert_eq!(tree.acquired, byte.acquired);
            }
        }
    }

    #[test]
    fn skip_subtree_spans() {
        let plan = plans().pop().unwrap();
        let wire = plan.encode();
        // Skipping the whole tree lands exactly at the end.
        assert_eq!(skip_subtree(&wire, 0).unwrap(), wire.len());
    }

    #[test]
    fn garbage_rejected() {
        let (schema, data, query) = setup();
        let mut src = RowSource::new(&data, 0);
        assert!(execute_wire(&[], &query, &schema, &mut src).is_err());
        assert!(execute_wire(&[0x07], &query, &schema, &mut src).is_err());
        // Split referencing an out-of-schema attribute.
        assert!(execute_wire(&[0x03, 99, 0, 0, 0x00, 0x01], &query, &schema, &mut src).is_err());
        // Seq referencing an out-of-range predicate.
        assert!(execute_wire(&[0x02, 1, 9], &query, &schema, &mut src).is_err());
    }
}
