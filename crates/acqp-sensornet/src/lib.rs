//! # acqp-sensornet — sensor-network execution substrate
//!
//! The paper's architecture (§2.5, Fig. 4): a well-provisioned
//! *basestation* collects historical readings, builds a conditional plan
//! off-line, and ships its compact encoding into the network; *motes*
//! execute the plan per epoch — a cheap binary-tree traversal — and
//! transmit passing tuples back. §2.4 adds the communication-aware
//! objective `argmin_P C(P) + α·ζ(P)`, and §7 the "complex acquisition
//! costs" extension where sensors share a board whose power-up is paid
//! once per tuple.
//!
//! All of that is built here:
//!
//! * [`energy`] — energy accounting: per-sensor µJ, shared-board
//!   power-up, radio per-byte costs.
//! * [`fault`] — deterministic seeded fault injection: lossy links with
//!   bounded retry + exponential backoff, mote dropout schedules,
//!   sensing failures (`sensornet.fault.*` taxonomy, `DESIGN.md` §9).
//! * [`interp`] — a byte-code interpreter that executes the *wire
//!   encoding* of a plan directly (no decoding, no heap) — what a mote
//!   would run.
//! * [`mote`] — a mote: a trace-fed tuple source with an energy ledger.
//! * [`basestation`] — plan construction, the α-penalized plan-size
//!   choice, dissemination costing.
//! * [`sim`] — the epoch loop tying it together, with a network-wide
//!   energy report.
//! * [`recovery`] — crash-safe basestation: checkpoint/WAL journaling
//!   through `acqp-persist`, seeded basestation crashes
//!   ([`sim::run_simulation_crashy`]), recovery with re-dissemination
//!   charged to the energy model (`recovery.*` taxonomy).
//! * [`service`] — the multi-query service loop: a schedule of
//!   concurrent queries over one fleet with per-epoch acquisition
//!   merging and a pluggable planning policy (`serve.*` taxonomy,
//!   `DESIGN.md` §14; the policy layer lives in `acqp-serve`).

#![warn(missing_docs)]
// Determinism tests assert bitwise-equal floats on purpose; the
// workspace-level `float_cmp` warning stays on for library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
pub mod basestation;
pub mod energy;
pub mod fault;
pub mod interp;
pub mod mote;
pub mod recovery;
pub mod service;
pub mod sim;
pub mod topology;

pub use basestation::{Basestation, PlannedQuery, PlannerChoice, ReplanBudget, ReplanOutcome};
pub use energy::{EnergyLedger, EnergyModel};
pub use fault::{attempt_packet, Delivery, Dropout, FaultModel, FaultStats, FaultStream};
pub use interp::execute_wire;
pub use mote::Mote;
pub use recovery::{CrashConfig, CrashReport};
pub use service::{
    run_service, run_service_with, AdmittedPlan, QueryOutcome, ScheduleEntry, ServePlanner,
    ServePolicyState, ServeRobustReport, ServiceOptions, ServicePolicy, ServiceReport,
};
pub use sim::{
    result_packet_bytes, run_simulation, run_simulation_adaptive, run_simulation_crashy,
    run_simulation_faulty, run_simulation_mode, run_simulation_multihop, run_simulation_recorded,
    sample_packet_bytes, AdaptiveConfig, FaultReport, ReplanEvent, SimReport,
};
pub use topology::Topology;
