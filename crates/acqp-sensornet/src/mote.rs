//! A simulated mote: a trace-fed tuple source with energy accounting.

use acqp_core::{AttrId, Dataset, Schema, TupleSource};

use crate::energy::{EnergyLedger, EnergyModel};

/// One sensor node. Its "physical world" is a pre-generated trace: row
/// `e` of `trace` holds the values its sensors *would* read during epoch
/// `e`. Energy is only charged for attributes the executing plan
/// actually acquires.
#[derive(Debug)]
pub struct Mote {
    id: u16,
    trace: Dataset,
    ledger: EnergyLedger,
}

impl Mote {
    /// Creates a mote from its per-epoch trace.
    pub fn new(id: u16, trace: Dataset) -> Self {
        Mote { id, trace, ledger: EnergyLedger::default() }
    }

    /// Node identifier.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Number of epochs of trace available.
    pub fn epochs(&self) -> usize {
        self.trace.len()
    }

    /// Energy spent so far.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Mutable ledger access for topology-level charging.
    pub(crate) fn ledger_mut(&mut self) -> &mut EnergyLedger {
        &mut self.ledger
    }

    /// Charges reception of `bytes` (plan dissemination).
    pub fn receive(&mut self, bytes: usize, model: &EnergyModel) {
        self.ledger.radio_rx_uj += bytes as f64 * model.radio_rx_uj_per_byte;
    }

    /// Charges transmission of `bytes` (result reporting).
    pub fn transmit(&mut self, bytes: usize, model: &EnergyModel) {
        self.ledger.radio_tx_uj += bytes as f64 * model.radio_tx_uj_per_byte;
    }

    /// Ground-truth reading (free of charge — used by the simulator to
    /// validate plan verdicts, never by plans).
    pub fn peek(&self, epoch: usize, attr: AttrId) -> u16 {
        self.trace.value(epoch, attr)
    }

    /// The mote's full trace — the vectorized simulator executes it in
    /// column batches instead of row-by-row sensor reads.
    pub(crate) fn trace(&self) -> &Dataset {
        &self.trace
    }

    /// Charges one epoch's acquisitions in the given order, exactly as
    /// a [`MeteredSource`] would have for the same acquisition sequence
    /// (sensing per read, one board power-up per board per epoch). The
    /// vectorized simulator replays each tuple's precomputed chain
    /// through this, so ledgers stay bitwise-identical to the scalar
    /// run's.
    pub(crate) fn charge_epoch(
        &mut self,
        acquired: &[AttrId],
        schema: &Schema,
        model: &EnergyModel,
    ) {
        let mut boards_on = 0u64;
        for &attr in acquired {
            self.ledger.sensing_uj += model.sense_uj(schema, attr);
            if let Some(b) = model.board_of(attr) {
                let bit = 1u64 << b;
                if boards_on & bit == 0 {
                    boards_on |= bit;
                    self.ledger.board_uj += model.board_powerup_uj;
                }
            }
        }
    }

    /// Begins epoch `epoch`, returning a metered [`TupleSource`] that
    /// charges this mote's ledger for every acquisition.
    pub fn epoch_source<'m>(
        &'m mut self,
        epoch: usize,
        schema: &'m Schema,
        model: &'m EnergyModel,
    ) -> MeteredSource<'m> {
        assert!(epoch < self.trace.len());
        MeteredSource {
            trace: &self.trace,
            epoch,
            schema,
            model,
            ledger: &mut self.ledger,
            boards_on: 0,
        }
    }
}

/// A [`TupleSource`] that reads one trace row and charges sensing plus
/// board power-up energy (§7 complex costs: first use of a board in an
/// epoch powers it up).
pub struct MeteredSource<'m> {
    trace: &'m Dataset,
    epoch: usize,
    schema: &'m Schema,
    model: &'m EnergyModel,
    ledger: &'m mut EnergyLedger,
    boards_on: u64,
}

impl TupleSource for MeteredSource<'_> {
    fn acquire(&mut self, attr: AttrId) -> u16 {
        self.ledger.sensing_uj += self.model.sense_uj(self.schema, attr);
        if let Some(b) = self.model.board_of(attr) {
            let bit = 1u64 << b;
            if self.boards_on & bit == 0 {
                self.boards_on |= bit;
                self.ledger.board_uj += self.model.board_powerup_uj;
            }
        }
        self.trace.value(self.epoch, attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::Attribute;

    fn setup() -> (Schema, Mote, EnergyModel) {
        let schema = Schema::new(vec![
            Attribute::new("light", 8, 100.0),
            Attribute::new("temp", 8, 100.0),
            Attribute::new("hour", 8, 1.0),
        ])
        .unwrap();
        let trace = Dataset::from_rows(&schema, vec![vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
        let model = EnergyModel::mica_like().with_board(vec![0, 1], 500.0);
        (schema.clone(), Mote::new(7, trace), model)
    }

    #[test]
    fn metered_acquisition_charges_sensing_and_board_once() {
        let (schema, mut mote, model) = setup();
        {
            let mut src = mote.epoch_source(0, &schema, &model);
            assert_eq!(src.acquire(2), 3); // cheap, no board
            assert_eq!(src.acquire(0), 1); // board powers up
            assert_eq!(src.acquire(1), 2); // same board, no second powerup
        }
        let l = mote.ledger();
        assert_eq!(l.sensing_uj, 201.0);
        assert_eq!(l.board_uj, 500.0);

        // A new epoch powers the board up again.
        {
            let mut src = mote.epoch_source(1, &schema, &model);
            assert_eq!(src.acquire(0), 4);
        }
        assert_eq!(mote.ledger().board_uj, 1000.0);
    }

    #[test]
    fn radio_charges() {
        let (_, mut mote, model) = setup();
        mote.receive(20, &model);
        mote.transmit(10, &model);
        assert_eq!(mote.ledger().radio_rx_uj, 15.0);
        assert_eq!(mote.ledger().radio_tx_uj, 10.0);
    }
}
