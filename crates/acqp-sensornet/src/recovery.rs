//! Crash-recovery support for the basestation: checkpoint/WAL
//! journaling during a run and state reconstruction after a seeded
//! crash (`run_simulation_crashy`).
//!
//! The division of labor: `acqp-persist` owns the file formats and the
//! recovery *policy* (newest valid snapshot + idempotent WAL replay);
//! this module owns the simulation-side *semantics* — which engine
//! events get journaled, what genesis state looks like on a cold start,
//! and how replayed records fold back into the drift monitor, window,
//! and plan version. Every recovery outcome is counted under the
//! `recovery.*` metric taxonomy.

use std::path::PathBuf;

use acqp_obs::{Counter, Recorder};
use acqp_persist::{
    BasestationCheckpoint, CheckpointStore, PersistError, ServeCheckpoint, WalRecord,
};

/// Knobs for a crash-recovery simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CrashConfig {
    /// Directory for snapshots and the WAL. `None` disables
    /// persistence entirely: every crash is then a cold start back to
    /// the genesis plan (the one recomputable from history).
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot cadence in epochs (`0` = never snapshot; the WAL alone
    /// still makes recovery lossless, just slower to replay).
    pub checkpoint_every: usize,
    /// Epochs at whose *start* the basestation crashes and restarts.
    /// Epoch 0 cannot crash: the initial dissemination defines genesis.
    pub crash_epochs: Vec<usize>,
    /// Additionally, an independent per-epoch crash probability drawn
    /// from the [`crate::fault::FaultStream::Crash`] stream of the
    /// run's [`crate::fault::FaultModel`]. `0.0` consumes no rolls.
    pub crash_rate: f64,
}

impl CrashConfig {
    /// Whether this configuration does anything at all: any journaling
    /// directory or any way a crash can fire. The default (inactive)
    /// config is what transparency pins rely on.
    pub fn is_active(&self) -> bool {
        self.checkpoint_dir.is_some()
            || !self.crash_epochs.is_empty()
            || self.crash_rate > 0.0
            || self.checkpoint_every > 0
    }
}

/// A [`crate::sim::FaultReport`] extended with crash-recovery
/// accounting.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// The underlying fault-path report.
    pub fault: crate::sim::FaultReport,
    /// Basestation crashes injected (each one triggered a recovery).
    pub crashes: usize,
    /// Recoveries that found no usable snapshot and rebuilt genesis
    /// state before replaying the WAL.
    pub cold_starts: usize,
    /// Snapshot files that failed validation across all recoveries.
    pub corrupt_snapshots: usize,
    /// WAL records replayed across all recoveries.
    pub wal_replayed: usize,
    /// Snapshots written during the run.
    pub checkpoints_written: usize,
    /// Radio energy (µJ, basestation tx + mote rx) spent on post-crash
    /// re-dissemination — the recovery tax the checkpoint cadence is
    /// trading against.
    pub recovery_rediss_uj: f64,
}

/// Pre-hoisted `recovery.*` instruments.
#[derive(Debug)]
pub(crate) struct CrashCounters {
    /// `recovery.attempted` — one per injected crash.
    pub attempted: Counter,
    /// `recovery.cold_start` — recoveries with no usable snapshot.
    pub cold_start: Counter,
    /// `recovery.corrupt` — snapshot files that failed validation.
    pub corrupt: Counter,
    /// `recovery.wal.replayed` — records folded back in.
    pub wal_replayed: Counter,
    /// `recovery.checkpoint.written` — snapshots persisted.
    pub checkpoints: Counter,
    /// `recovery.masks.seeded` — estimator mask caches restored from a
    /// checkpoint instead of re-paying the dataset pass.
    pub masks_seeded: Counter,
}

impl CrashCounters {
    pub(crate) fn new(rec: &Recorder) -> Self {
        CrashCounters {
            attempted: rec.counter("recovery.attempted"),
            cold_start: rec.counter("recovery.cold_start"),
            corrupt: rec.counter("recovery.corrupt"),
            wal_replayed: rec.counter("recovery.wal.replayed"),
            checkpoints: rec.counter("recovery.checkpoint.written"),
            masks_seeded: rec.counter("recovery.masks.seeded"),
        }
    }
}

/// The engine's journaling handle: a [`CheckpointStore`] plus sticky
/// error capture. Persistence failures must not unwind the epoch loop
/// mid-flight (the simulation's energy accounting would be torn), so
/// the first I/O error is latched and surfaced when the run returns.
#[derive(Debug)]
pub(crate) struct Journal {
    store: CheckpointStore,
    pub(crate) error: Option<PersistError>,
    pub(crate) appended: u64,
}

impl Journal {
    pub(crate) fn open(dir: &std::path::Path) -> Result<Self, PersistError> {
        Ok(Journal { store: CheckpointStore::open(dir)?, error: None, appended: 0 })
    }

    /// Appends one WAL record, latching (not propagating) failures.
    pub(crate) fn append(&mut self, record: &WalRecord) {
        if self.error.is_some() {
            return;
        }
        match self.store.append(record) {
            Ok(_) => self.appended += 1,
            Err(e) => self.error = Some(e),
        }
    }

    /// Sequence number the snapshot being written should record as
    /// `last_seq` (everything appended so far is folded in).
    pub(crate) fn folded_seq(&self) -> u64 {
        self.store.next_seq() - 1
    }

    /// Writes a snapshot; true on success, latching failures.
    pub(crate) fn write_snapshot(&mut self, cp: &BasestationCheckpoint) -> bool {
        if self.error.is_some() {
            return false;
        }
        match self.store.write_snapshot(cp) {
            Ok(_) => true,
            Err(e) => {
                self.error = Some(e);
                false
            }
        }
    }

    /// Writes a serve-state snapshot; true on success, latching
    /// failures.
    pub(crate) fn write_serve_snapshot(&mut self, cp: &ServeCheckpoint) -> bool {
        if self.error.is_some() {
            return false;
        }
        match self.store.write_serve_snapshot(cp) {
            Ok(_) => true,
            Err(e) => {
                self.error = Some(e);
                false
            }
        }
    }

    /// Serve-flavored [`recover`](Self::recover): same reopen + newest
    /// valid snapshot + WAL tail policy, reading serve checkpoints.
    pub(crate) fn recover_serve(&mut self) -> RecoveredServeState {
        let reopened = match CheckpointStore::open(self.store.dir()) {
            Ok(s) => s,
            Err(e) => {
                self.error = Some(e);
                return RecoveredServeState::genesis();
            }
        };
        self.store = reopened;
        match self.store.recover_serve() {
            Ok(out) => RecoveredServeState {
                checkpoint: out.checkpoint,
                replayed: out.replayed,
                corrupt_snapshots: out.corrupt_snapshots,
                snapshots_scanned: out.snapshots_scanned,
                cold_start: out.cold_start,
            },
            Err(e) => {
                self.error = Some(e);
                RecoveredServeState::genesis()
            }
        }
    }

    /// Recovers as a freshly restarted process would: reopens the store
    /// (new handles, recomputed counters) and reads back the newest
    /// valid snapshot plus the WAL tail beyond it. Corruption is
    /// *absorbed* into the outcome, never an error; only I/O failures
    /// latch.
    pub(crate) fn recover(&mut self) -> RecoveredState {
        let reopened = match CheckpointStore::open(self.store.dir()) {
            Ok(s) => s,
            Err(e) => {
                self.error = Some(e);
                return RecoveredState::genesis();
            }
        };
        self.store = reopened;
        match self.store.recover() {
            Ok(out) => RecoveredState {
                checkpoint: out.checkpoint,
                replayed: out.replayed,
                corrupt_snapshots: out.corrupt_snapshots,
                snapshots_scanned: out.snapshots_scanned,
                cold_start: out.cold_start,
            },
            Err(e) => {
                self.error = Some(e);
                RecoveredState::genesis()
            }
        }
    }
}

/// What a crash restart found on disk (or the genesis default when
/// persistence is disabled or unreadable).
#[derive(Debug)]
pub(crate) struct RecoveredState {
    pub(crate) checkpoint: Option<BasestationCheckpoint>,
    pub(crate) replayed: Vec<WalRecord>,
    pub(crate) corrupt_snapshots: usize,
    pub(crate) snapshots_scanned: usize,
    pub(crate) cold_start: bool,
}

impl RecoveredState {
    /// No persisted state at all: rebuild from the genesis plan.
    pub(crate) fn genesis() -> Self {
        RecoveredState {
            checkpoint: None,
            replayed: Vec::new(),
            corrupt_snapshots: 0,
            snapshots_scanned: 0,
            cold_start: true,
        }
    }
}

/// What a serve crash restart found on disk.
#[derive(Debug)]
pub(crate) struct RecoveredServeState {
    pub(crate) checkpoint: Option<ServeCheckpoint>,
    pub(crate) replayed: Vec<WalRecord>,
    pub(crate) corrupt_snapshots: usize,
    pub(crate) snapshots_scanned: usize,
    pub(crate) cold_start: bool,
}

impl RecoveredServeState {
    /// No persisted serve state at all: the policy cold-starts.
    pub(crate) fn genesis() -> Self {
        RecoveredServeState {
            checkpoint: None,
            replayed: Vec::new(),
            corrupt_snapshots: 0,
            snapshots_scanned: 0,
            cold_start: true,
        }
    }
}

/// Per-run crash bookkeeping threaded through the engine.
#[derive(Debug)]
pub(crate) struct CrashRuntime<'a> {
    pub(crate) cfg: &'a CrashConfig,
    pub(crate) journal: Option<Journal>,
    pub(crate) counters: CrashCounters,
    pub(crate) crashes: usize,
    pub(crate) cold_starts: usize,
    pub(crate) corrupt_snapshots: usize,
    pub(crate) wal_replayed: usize,
    pub(crate) checkpoints_written: usize,
    pub(crate) recovery_rediss_uj: f64,
}

impl<'a> CrashRuntime<'a> {
    pub(crate) fn new(cfg: &'a CrashConfig, rec: &Recorder) -> Result<Self, PersistError> {
        let journal = match &cfg.checkpoint_dir {
            Some(dir) => Some(Journal::open(dir)?),
            None => None,
        };
        Ok(CrashRuntime {
            cfg,
            journal,
            counters: CrashCounters::new(rec),
            crashes: 0,
            cold_starts: 0,
            corrupt_snapshots: 0,
            wal_replayed: 0,
            checkpoints_written: 0,
            recovery_rediss_uj: 0.0,
        })
    }

    /// The latched persistence error, if any append/snapshot/recover
    /// failed during the run.
    pub(crate) fn take_error(&mut self) -> Option<PersistError> {
        self.journal.as_mut().and_then(|j| j.error.take())
    }
}

/// Maps a persistence failure onto the workspace error type (only I/O
/// can surface — corruption is always absorbed by recovery).
pub(crate) fn core_err(e: PersistError) -> acqp_core::Error {
    match e {
        PersistError::Io { path, what } => acqp_core::Error::Io { path, what },
        PersistError::Corrupt { what } => acqp_core::Error::Parse { what },
    }
}
