//! The multi-query basestation service loop (`DESIGN.md` §14).
//!
//! [`run_service`] admits a *schedule* of queries over one fleet and
//! runs them concurrently, merging their acquisition demands per epoch:
//! within one `(epoch, mote)` slot the first query to demand an
//! attribute pays for the sensor read and every later live query is
//! served from the shared value cache for free
//! ([`acqp_core::SharedSource`]). Planning is delegated to a
//! [`ServePlanner`] hook so the policy layer (`acqp-serve`) can cache
//! plans and invalidate them on drift without this engine knowing
//! about either.
//!
//! Determinism: queries are admitted in schedule order, executed in
//! admission order within every slot, and motes are visited in index
//! order — the *arbitration order* is a pure function of the schedule,
//! so fixed seeds reproduce runs bit-for-bit. A service run with a
//! single scheduled query performs exactly the `f64` ledger additions
//! of [`crate::sim::run_simulation_mode`] per accumulator, in the same
//! order, and is therefore bitwise identical to it (pinned by
//! `tests/serve_equivalence.rs`). Latency is measured in **epochs**,
//! never wall-clock time.

use std::collections::BTreeMap;

use acqp_core::{
    AttrId, BatchExecutor, BatchOutcome, ColumnBatch, CostModel, Error, ExecMode, ExecOutcome,
    Plan, PreparedPlan, Query, QueryStatus, Result, Schema, SharedScratch, SharedSource,
    BATCH_ROWS,
};
use acqp_obs::{Counter, FlightRecorder, Hist, Recorder};
use acqp_persist::{PlanRecord, ServeCheckpoint, ServeLiveRecord, ServePlanEntry, WalRecord};
use acqp_verify::verify_wire;

use crate::basestation::PlannedQuery;
use crate::energy::{EnergyLedger, EnergyModel};
use crate::fault::{attempt_packet, FaultModel, FaultStats, FaultStream, FaultySource};
use crate::interp::execute_wire_verified;
use crate::mote::Mote;
use crate::recovery::{core_err, CrashConfig, CrashRuntime, RecoveredServeState};
use crate::sim::{emit_retry, result_packet_bytes};

/// One entry of a service schedule: `query` is admitted at epoch
/// `admit` and runs for `window` epochs (a zero window is treated as
/// one epoch). Entries are admitted in schedule order — ties at the
/// same admission epoch keep their relative order, which is the
/// service's deterministic arbitration order.
#[derive(Debug, Clone)]
pub struct ScheduleEntry {
    /// The query to run.
    pub query: Query,
    /// Epoch at which the query is admitted.
    pub admit: usize,
    /// Number of epochs the query stays live.
    pub window: usize,
    /// Optional deadline: the query must terminate within `deadline`
    /// epochs of its *scheduled* admission (queueing time counts).
    /// Crossing it while running degrades to a partial, typed
    /// [`QueryStatus::TimedOut`] outcome; crossing it while queued
    /// sheds the query. `None` — the lossless default — never binds.
    pub deadline: Option<usize>,
}

impl ScheduleEntry {
    /// A deadline-free entry: `query` admitted at `admit` for `window`
    /// epochs.
    pub fn new(query: Query, admit: usize, window: usize) -> Self {
        ScheduleEntry { query, admit, window, deadline: None }
    }

    /// Sets the entry's deadline (epochs from scheduled admission).
    pub fn with_deadline(mut self, deadline: usize) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// What the planning layer decided for an admitted query.
#[derive(Debug, Clone)]
pub struct AdmittedPlan {
    /// The plan to disseminate and execute.
    pub planned: PlannedQuery,
    /// True when the plan came out of a cache rather than a search.
    pub cache_hit: bool,
    /// Plan-search subproblems expanded to produce it (zero on a hit).
    pub subproblems: u64,
}

/// The planning policy behind [`run_service`]: the engine calls
/// [`ServePlanner::plan_admitted`] once per admission and
/// [`ServePlanner::query_completed`] once per completion (handing over
/// the query's observed per-predicate counts so the policy can track
/// drift and invalidate cached plans).
pub trait ServePlanner {
    /// Produces the plan for `query`, admitted at `epoch`.
    fn plan_admitted(&mut self, query: &Query, epoch: usize) -> Result<AdmittedPlan>;

    /// Notifies the policy that `query` completed at `epoch` with the
    /// given cumulative `(evaluated, passed)` counts per predicate.
    /// Returns how many cached plans this completion invalidated.
    fn query_completed(&mut self, query: &Query, epoch: usize, pred_counts: &[(u64, u64)]) -> u64;

    /// The policy's current statistics epoch (bumped on invalidation).
    fn stats_epoch(&self) -> u64;

    /// Snapshot of the policy's cached state for crash checkpoints.
    /// Policies without durable state (the default) return `None`; the
    /// engine then checkpoints live-query progress alone.
    fn policy_state(&self) -> Option<ServePolicyState> {
        None
    }

    /// Restores the policy after a basestation crash: `Some(state)`
    /// from a recovered checkpoint, `None` for a cold start (the policy
    /// must reset to genesis). The default does nothing.
    fn restore_policy_state(&mut self, state: Option<ServePolicyState>) {
        let _ = state;
    }
}

/// The serializable face of a [`ServePlanner`]'s cached state: the
/// stats epoch plus every cached plan as `(query, cache-key epoch,
/// plan)`. The query rides along because restoring a drift monitor
/// needs the predicates, not just the plan bytes.
#[derive(Debug, Clone)]
pub struct ServePolicyState {
    /// The policy's statistics epoch.
    pub stats_epoch: u64,
    /// Cached plans in deterministic key order.
    pub plans: Vec<(Query, u64, PlannedQuery)>,
}

/// Per-query accounting for one schedule entry.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Whether the query was admitted at all (entries whose admission
    /// epoch falls beyond the run are never admitted).
    pub admitted: bool,
    /// Epoch the query was admitted at.
    pub admit: usize,
    /// Epoch the query completed at (one past its last live epoch).
    pub completed_at: usize,
    /// Mote-epochs this query evaluated.
    pub tuples: usize,
    /// Tuples that satisfied the query.
    pub results: usize,
    /// Whether every verdict matched ground truth.
    pub all_correct: bool,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Plan-search subproblems expanded on admission.
    pub subproblems: u64,
    /// Admission-to-first-result latency in epochs (`None` when the
    /// query produced no result).
    pub latency_epochs: Option<u64>,
    /// Cached plans invalidated when this query's completion stats
    /// were absorbed.
    pub invalidated: u64,
    /// Typed terminal outcome. The lossless loop only ever produces
    /// [`QueryStatus::Complete`] (or `Shed` for entries scheduled
    /// beyond the run).
    pub status: QueryStatus,
    /// Epoch admission control dropped the query, if it was shed by
    /// policy rather than scheduled beyond the run.
    pub shed_at: Option<usize>,
    /// Delivered result rows as `(epoch, mote)` pairs in delivery
    /// order, when [`ServiceOptions::collect_rows`] is on (the
    /// partial-result prefix guarantee is stated over these).
    pub rows: Vec<(usize, u16)>,
}

/// Result of one service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Epochs the service ran for.
    pub epochs: usize,
    /// One outcome per schedule entry, in schedule order.
    pub queries: Vec<QueryOutcome>,
    /// Aggregate energy over all motes.
    pub network: EnergyLedger,
    /// Per-mote energy ledgers.
    pub per_mote: Vec<EnergyLedger>,
    /// Basestation transmit energy spent on dissemination.
    pub bs_tx_uj: f64,
    /// Sensor reads physically performed (after cross-query merging).
    pub performed_acquisitions: u64,
    /// Sensor reads the live queries demanded (before merging) — the
    /// gap to `performed_acquisitions` is the sharing win.
    pub demanded_acquisitions: u64,
    /// Fault/crash/policy accounting — `None` on the lossless path.
    pub robustness: Option<ServeRobustReport>,
}

impl ServiceReport {
    /// Total query-tuples evaluated across the schedule.
    pub fn tuples(&self) -> usize {
        self.queries.iter().map(|q| q.tuples).sum()
    }

    /// Total results across the schedule.
    pub fn results(&self) -> usize {
        self.queries.iter().map(|q| q.results).sum()
    }

    /// Whether every verdict of every query matched ground truth.
    pub fn all_correct(&self) -> bool {
        self.queries.iter().all(|q| q.all_correct)
    }

    /// Queries that terminated with the given status.
    pub fn count_status(&self, status: QueryStatus) -> usize {
        self.queries.iter().filter(|q| q.status == status).count()
    }
}

/// Robustness accounting for one fault-tolerant service run
/// (`DESIGN.md` §14.5).
#[derive(Debug, Clone, Default)]
pub struct ServeRobustReport {
    /// Result packets that reached the basestation.
    pub delivered_results: usize,
    /// Result packets dropped after exhausting the attempt cap.
    pub lost_results: usize,
    /// Tuples abandoned because a sensor read aborted.
    pub aborted_tuples: usize,
    /// Mote-epochs lost to dropout schedules.
    pub offline_epochs: usize,
    /// Queries shed by admission control.
    pub shed: usize,
    /// Queries terminated at their deadline.
    pub timed_out: usize,
    /// Admissions deferred because the epoch budget was full.
    pub budget_deferrals: u64,
    /// Admissions deferred by the fairness rule (hot signature at its
    /// fair share yielding to a waiting different signature).
    pub fairness_deferrals: u64,
    /// Live queries re-planned onto a new stats epoch after drift.
    pub readmissions: u64,
    /// Basestation crashes injected.
    pub crashes: usize,
    /// Recoveries that found no usable snapshot.
    pub cold_starts: usize,
    /// Snapshot files that failed validation across recoveries.
    pub corrupt_snapshots: usize,
    /// WAL records replayed across recoveries.
    pub wal_replayed: usize,
    /// Serve snapshots written during the run.
    pub checkpoints_written: usize,
    /// Radio energy (µJ, bs tx + mote rx) spent re-disseminating plans
    /// after crashes.
    pub recovery_rediss_uj: f64,
}

/// Admission-control and degradation policy for the robust service
/// loop. The default is a no-op: admit everything immediately, never
/// shed, never re-admit — required for loss-0 transparency.
#[derive(Debug, Clone, PartialEq)]
pub struct ServicePolicy {
    /// Per-epoch budget on the summed expected per-tuple cost of live
    /// plans. Admissions that would exceed it wait in the queue (in
    /// strict schedule order); `None` admits unconditionally.
    pub epoch_cost_budget: Option<f64>,
    /// Epochs an entry may wait in the admission queue before it is
    /// shed (only enforced when a budget is set).
    pub max_queue_epochs: usize,
    /// Fairness bound: once a signature has this many live instances,
    /// further admissions of it yield to waiting entries of *other*
    /// signatures — one hot signature cannot starve the tail.
    pub fair_share: usize,
    /// Re-plan in-flight queries onto the new stats epoch when a
    /// completion's drift firing invalidates the plan cache, instead of
    /// letting them finish on stale plans.
    pub readmit_on_drift: bool,
}

impl Default for ServicePolicy {
    fn default() -> Self {
        ServicePolicy {
            epoch_cost_budget: None,
            max_queue_epochs: 8,
            fair_share: 2,
            readmit_on_drift: false,
        }
    }
}

impl ServicePolicy {
    /// Whether the policy can never alter a run (the transparency
    /// precondition).
    pub fn is_noop(&self) -> bool {
        self.epoch_cost_budget.is_none() && !self.readmit_on_drift
    }

    /// Validates the knobs: a budget must be a positive finite µJ
    /// figure and the fair share at least one.
    pub fn validate(&self) -> Result<()> {
        if let Some(b) = self.epoch_cost_budget {
            if !b.is_finite() || b <= 0.0 {
                return Err(Error::InvalidFlag {
                    flag: "epoch-budget".into(),
                    value: format!("{b}"),
                    why: "the per-epoch cost budget must be a positive finite number",
                });
            }
        }
        if self.fair_share == 0 {
            return Err(Error::InvalidFlag {
                flag: "fair-share".into(),
                value: "0".into(),
                why: "the fairness bound must admit at least one instance per signature",
            });
        }
        Ok(())
    }
}

/// Everything optional about a service run: fault injection, crash
/// recovery, admission policy, row collection. [`Default`] is exactly
/// the lossless loop — [`run_service_with`] routes a default options
/// struct through the identical code path as [`run_service`].
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Seeded fault model ([`FaultModel::none`] = lossless).
    pub faults: FaultModel,
    /// Crash/checkpoint configuration (inactive by default).
    pub crash: CrashConfig,
    /// Admission-control policy (no-op by default).
    pub policy: ServicePolicy,
    /// Collect delivered `(epoch, mote)` rows per query. Forces the
    /// robust path even when everything else is default — the lever the
    /// transparency proptests use to pin the robust loop at loss 0
    /// against the lossless loop bitwise.
    pub collect_rows: bool,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            faults: FaultModel::none(),
            crash: CrashConfig::default(),
            policy: ServicePolicy::default(),
            collect_rows: false,
        }
    }
}

impl ServiceOptions {
    /// Whether these options cannot change anything about `schedule`'s
    /// lossless execution, so the run may take the lossless fast path.
    pub fn is_transparent(&self, schedule: &[ScheduleEntry]) -> bool {
        self.faults.is_lossless()
            && !self.crash.is_active()
            && self.policy.is_noop()
            && !self.collect_rows
            && schedule.iter().all(|s| s.deadline.is_none())
    }
}

/// Vectorized-mode precomputation for one live query on one mote: the
/// per-epoch verdicts and (node-constant) acquisition chains of its
/// plan over the mote's trace window, produced by the batch executor.
struct MotePre {
    verdicts: Vec<bool>,
    chains: Vec<Vec<AttrId>>,
}

/// One admitted, still-running query.
struct LiveQuery {
    /// Index into the schedule (also the arbitration key).
    idx: usize,
    planned: PlannedQuery,
    admit: usize,
    /// One past the query's last live epoch.
    end: usize,
    uplink_bytes: usize,
    /// `pred_of[a]` = index of the predicate on attribute `a`, if any.
    pred_of: Vec<Option<usize>>,
    /// Cumulative per-predicate `(evaluated, passed)` counts.
    pend: Vec<(u64, u64)>,
    tuples: usize,
    results: usize,
    all_correct: bool,
    first_result: Option<usize>,
    cache_hit: bool,
    subproblems: u64,
    /// Per-mote batch precomputation (vectorized mode only).
    pre: Vec<MotePre>,
    /// Query signature (robust path; unused by the lossless loop).
    sig: u64,
    /// Absolute deadline epoch (scheduled admission + deadline).
    deadline_at: Option<usize>,
    /// Epoch `pre`'s arrays start at (re-set on drift readmission).
    pre_base: usize,
    /// Which motes physically hold the current plan. Empty on the
    /// lossless path, where dissemination cannot fail.
    mote_has: Vec<bool>,
    /// The basestation's belief about `mote_has` — process memory,
    /// wiped to all-false by a crash (which is what forces the
    /// recovery re-dissemination).
    bs_known: Vec<bool>,
    /// Passing tuples whose result packet timed out.
    lost_results: usize,
    /// Tuples discarded because their chain hit an aborted sensor.
    aborted_tuples: usize,
    /// Mote-epochs this query could not execute (offline mote or plan
    /// not yet disseminated).
    missed_epochs: usize,
    /// Delivered `(epoch, mote)` rows (robust path, opt-in).
    rows: Vec<(usize, u16)>,
}

impl LiveQuery {
    /// Whether any tuple or result was lost — a window-end termination
    /// then reports [`QueryStatus::Partial`] instead of `Complete`.
    fn is_degraded(&self) -> bool {
        self.lost_results > 0 || self.aborted_tuples > 0 || self.missed_epochs > 0
    }
}

/// Pre-hoisted `serve.*` instruments (see `DESIGN.md` §8).
struct ServeMetrics {
    admitted: Counter,
    completed: Counter,
    tuples: Counter,
    results: Counter,
    radio: Counter,
    demanded: Counter,
    performed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    invalidations: Counter,
    subproblems: Counter,
    latency: Hist,
}

impl ServeMetrics {
    fn new(rec: &Recorder) -> ServeMetrics {
        ServeMetrics {
            admitted: rec.counter("serve.queries.admitted"),
            completed: rec.counter("serve.queries.completed"),
            tuples: rec.counter("serve.tuples"),
            results: rec.counter("serve.results"),
            radio: rec.counter("serve.radio.msgs"),
            demanded: rec.counter("serve.acquisitions.demanded"),
            performed: rec.counter("serve.acquisitions.performed"),
            cache_hits: rec.counter("serve.cache.hits"),
            cache_misses: rec.counter("serve.cache.misses"),
            invalidations: rec.counter("serve.cache.invalidations"),
            subproblems: rec.counter("serve.plan.subproblems"),
            latency: rec.hist("serve.latency_epochs"),
        }
    }
}

/// Pre-hoisted `verify.*` instruments (see `DESIGN.md` §8): the static
/// plan-verification gates both service loops run in front of every
/// dissemination and every checkpoint restore.
struct VerifyMetrics {
    checked: Counter,
    rejected: Counter,
    demoted: Counter,
    clamped: Counter,
    wire_bytes: Hist,
}

impl VerifyMetrics {
    fn new(rec: &Recorder) -> VerifyMetrics {
        VerifyMetrics {
            checked: rec.counter("verify.checked"),
            rejected: rec.counter("verify.rejected"),
            demoted: rec.counter("verify.recovery.demoted"),
            clamped: rec.counter("verify.cost.clamped"),
            wire_bytes: rec.hist("verify.wire_bytes"),
        }
    }

    /// Gate in front of every admission: the wire bytes must pass the
    /// structural and semantic passes (a failure is a hard typed error
    /// — malformed bytes never reach the radio), and the planner's
    /// claimed expected cost is replaced by its certified clamp when it
    /// falls outside the cost pass's bound, so admission control only
    /// ever budgets on numbers the verifier stands behind. For honest
    /// planners the clamp is the identity.
    fn admit(&self, plan: &mut AdmittedPlan, query: &Query, schema: &Schema) -> Result<()> {
        self.checked.incr(1);
        self.wire_bytes.observe(plan.planned.wire.len() as u64);
        let cert = match verify_wire(&plan.planned.wire, query, schema) {
            Ok(cert) => cert,
            Err(err) => {
                self.rejected.incr(1);
                return Err(err.into());
            }
        };
        if cert.check_claim(plan.planned.expected_cost).is_err() {
            self.clamped.incr(1);
            let claimed = plan.planned.expected_cost;
            plan.planned.expected_cost = if claimed.is_finite() {
                claimed.clamp(cert.bound.best_case, cert.bound.worst_case)
            } else {
                cert.bound.worst_case
            };
        }
        Ok(())
    }
}

/// Runs `schedule` as a concurrent multi-query service over the fleet,
/// losslessly, for `epochs` epochs. Plans come from `planner`; every
/// admission is disseminated to the whole fleet (radio energy charged
/// like the single-query engine's), every live query executes once per
/// `(epoch, mote)` slot with acquisitions merged across queries, and
/// every passing tuple transmits that query's result packet.
///
/// Returns one [`QueryOutcome`] per schedule entry, in schedule order.
#[allow(clippy::too_many_arguments)]
pub fn run_service(
    schema: &Schema,
    schedule: &[ScheduleEntry],
    planner: &mut dyn ServePlanner,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    mode: ExecMode,
    rec: &Recorder,
) -> Result<ServiceReport> {
    let span = rec.span("serve.run");
    let flight = rec.flight().clone();
    let start_seq = flight.emit(
        0,
        0,
        "serve.start",
        &[
            ("queries", schedule.len().into()),
            ("motes", motes.len().into()),
            ("epochs", epochs.into()),
        ],
    );
    let m = ServeMetrics::new(rec);
    let vm = VerifyMetrics::new(rec);

    // Outcomes in schedule order; entries admitted beyond the run keep
    // their zeroed row with `admitted: false`.
    let mut outcomes: Vec<QueryOutcome> = schedule
        .iter()
        .map(|s| QueryOutcome {
            admitted: false,
            admit: s.admit,
            completed_at: s.admit,
            tuples: 0,
            results: 0,
            all_correct: true,
            cache_hit: false,
            subproblems: 0,
            latency_epochs: None,
            invalidated: 0,
            status: QueryStatus::Shed,
            shed_at: None,
            rows: Vec::new(),
        })
        .collect();

    // Admission index: schedule entries by admission epoch, preserving
    // schedule order within an epoch (the arbitration order).
    let mut admissions_at: Vec<Vec<usize>> = vec![Vec::new(); epochs];
    for (i, s) in schedule.iter().enumerate() {
        if s.admit < epochs {
            admissions_at[s.admit].push(i);
        }
    }

    let mut live: Vec<LiveQuery> = Vec::new();
    let mut scratch = SharedScratch::new(schema.len());
    let mut slot_outs: Vec<ExecOutcome> = Vec::new();
    let mut bs_tx_uj = 0.0;
    let mut demanded = 0u64;
    let mut performed = 0u64;
    let mut exec = BatchExecutor::new();
    let mut out = BatchOutcome::default();

    for (e, admitted_now) in admissions_at.iter().enumerate() {
        // 1. Admissions, in schedule order.
        for &idx in admitted_now {
            let entry = &schedule[idx];
            let mut plan = planner.plan_admitted(&entry.query, e)?;
            vm.admit(&mut plan, &entry.query, schema)?;
            m.admitted.incr(1);
            m.subproblems.incr(plan.subproblems);
            if plan.cache_hit {
                m.cache_hits.incr(1);
            } else {
                m.cache_misses.incr(1);
            }
            // Dissemination: every mote receives the plan, exactly like
            // the single-query engine's lossless round.
            for mote in motes.iter_mut() {
                m.radio.incr(1);
                mote.receive(plan.planned.wire.len(), model);
                bs_tx_uj += (plan.planned.wire.len()) as f64 * model.radio_tx_uj_per_byte;
            }
            flight.emit(
                e as u64,
                start_seq,
                "serve.admit",
                &[
                    ("query", idx.into()),
                    ("cache_hit", plan.cache_hit.into()),
                    ("subproblems", plan.subproblems.into()),
                    ("wire_bytes", plan.planned.wire.len().into()),
                ],
            );
            let mut pred_of: Vec<Option<usize>> = vec![None; schema.len()];
            for (j, &a) in entry.query.attrs().iter().enumerate() {
                pred_of[a] = Some(j);
            }
            let end = (entry.admit + entry.window.max(1)).min(epochs);
            let pre = match mode {
                ExecMode::Scalar => Vec::new(),
                ExecMode::Vectorized => precompute_batches(
                    &mut exec,
                    &mut out,
                    &plan.planned,
                    &entry.query,
                    schema,
                    motes,
                    entry.admit,
                    end,
                ),
            };
            outcomes[idx].admitted = true;
            live.push(LiveQuery {
                idx,
                planned: plan.planned,
                admit: entry.admit,
                end,
                uplink_bytes: result_packet_bytes(schema, &entry.query),
                pred_of,
                pend: vec![(0, 0); entry.query.len()],
                tuples: 0,
                results: 0,
                all_correct: true,
                first_result: None,
                cache_hit: plan.cache_hit,
                subproblems: plan.subproblems,
                pre,
                sig: 0,
                deadline_at: None,
                pre_base: entry.admit,
                mote_has: Vec::new(),
                bs_known: Vec::new(),
                lost_results: 0,
                aborted_tuples: 0,
                missed_epochs: 0,
                rows: Vec::new(),
            });
        }

        // 2. One merged execution pass per mote, in index order. Phase
        // A runs every live query against the shared source (charging
        // sensing + board energy in first-demand order); phase B does
        // per-query accounting and result uplinks once the metered
        // source has released the mote.
        for (mi, mote) in motes.iter_mut().enumerate() {
            if live.is_empty() || e >= mote.epochs() {
                continue;
            }
            scratch.reset();
            match mode {
                ExecMode::Scalar => {
                    slot_outs.clear();
                    {
                        // One metered source per slot: its board
                        // power-up state spans every query in the slot,
                        // so a board powers up at most once per epoch
                        // per mote no matter how many queries read it.
                        let mut src = mote.epoch_source(e, schema, model);
                        for q in live.iter() {
                            let mut shared = SharedSource::new(&mut src, &mut scratch);
                            // Admission verified the plan, so the
                            // checked-free interpreter path is sound.
                            let o = execute_wire_verified(
                                &q.planned.wire,
                                &schedule[q.idx].query,
                                schema,
                                &mut shared,
                            );
                            slot_outs.push(o);
                        }
                    }
                    for (q, o) in live.iter_mut().zip(&slot_outs) {
                        account_slot(
                            q,
                            &schedule[q.idx].query,
                            mote,
                            model,
                            e,
                            o.verdict,
                            &o.acquired,
                            &m,
                        );
                        demanded += o.acquired.len() as u64;
                    }
                }
                ExecMode::Vectorized => {
                    // Merge the precomputed per-query chains into one
                    // deduplicated chain in first-demand order (the
                    // exact order the scalar shared source acquires
                    // in), then charge it once.
                    let mut seen = 0u64;
                    let mut merged: Vec<AttrId> = Vec::new();
                    for q in live.iter_mut() {
                        let off = e - q.admit;
                        let (verdict, chain) = {
                            let pre = &q.pre[mi];
                            (pre.verdicts[off], pre.chains[off].clone())
                        };
                        for &a in &chain {
                            let bit = 1u64 << a;
                            if seen & bit == 0 {
                                seen |= bit;
                                merged.push(a);
                            }
                        }
                        account_slot(
                            q,
                            &schedule[q.idx].query,
                            mote,
                            model,
                            e,
                            verdict,
                            &chain,
                            &m,
                        );
                        demanded += chain.len() as u64;
                    }
                    mote.charge_epoch(&merged, schema, model);
                    m.performed.incr(merged.len() as u64);
                    performed += merged.len() as u64;
                }
            }
            if mode == ExecMode::Scalar {
                m.performed.incr(scratch.acquired().len() as u64);
                performed += scratch.acquired().len() as u64;
            }
        }

        // 3. Completions: queries whose last live epoch was `e`.
        let (done, rest): (Vec<LiveQuery>, Vec<LiveQuery>) =
            live.into_iter().partition(|q| q.end == e + 1);
        live = rest;
        for q in done {
            complete(q, e + 1, schedule, planner, &mut outcomes, &m, &flight, start_seq);
        }
    }
    // `end` is clamped to `epochs`, so nothing should still be live
    // here; drain defensively all the same.
    for q in std::mem::take(&mut live) {
        complete(q, epochs, schedule, planner, &mut outcomes, &m, &flight, start_seq);
    }

    rec.gauge("serve.stats_epoch", planner.stats_epoch() as f64);
    let per_mote: Vec<EnergyLedger> = motes.iter().map(|mt| *mt.ledger()).collect();
    if rec.enabled() {
        for (mt, l) in motes.iter().zip(&per_mote) {
            let id = mt.id();
            rec.gauge(&format!("sensornet.mote{id}.sensing_uj"), l.sensing_uj);
            rec.gauge(&format!("sensornet.mote{id}.radio_uj"), l.radio_tx_uj + l.radio_rx_uj);
            rec.gauge(&format!("sensornet.mote{id}.total_uj"), l.total_uj());
        }
    }
    let mut network = EnergyLedger::default();
    for l in &per_mote {
        network.absorb(l);
    }
    let report = ServiceReport {
        epochs,
        queries: outcomes,
        network,
        per_mote,
        bs_tx_uj,
        performed_acquisitions: performed,
        demanded_acquisitions: demanded,
        robustness: None,
    };
    flight.emit(
        epochs as u64,
        start_seq,
        "serve.end",
        &[
            ("results", report.results().into()),
            ("all_correct", report.all_correct().into()),
            ("performed", performed.into()),
            ("demanded", demanded.into()),
        ],
    );
    drop(span);
    Ok(report)
}

/// Per-query slot accounting shared by both exec modes: tuple/result
/// counters, drift observations over the query's own acquisition
/// chain, ground-truth verification and the result uplink.
#[allow(clippy::too_many_arguments)]
fn account_slot(
    q: &mut LiveQuery,
    query: &Query,
    mote: &mut Mote,
    model: &EnergyModel,
    e: usize,
    verdict: bool,
    chain: &[AttrId],
    m: &ServeMetrics,
) {
    q.tuples += 1;
    m.tuples.incr(1);
    m.demanded.incr(chain.len() as u64);
    // Per-query drift observations use the query's own acquisition
    // chain — identical to what an independent run would observe.
    for &a in chain {
        if let Some(j) = q.pred_of[a] {
            q.pend[j].0 += 1;
            q.pend[j].1 += u64::from(query.pred(j).eval(mote.peek(e, a)));
        }
    }
    let truth = query.eval_with(|a| mote.peek(e, a));
    q.all_correct &= verdict == truth;
    if verdict {
        q.results += 1;
        m.results.incr(1);
        q.first_result.get_or_insert(e);
        mote.transmit(q.uplink_bytes, model);
        m.radio.incr(1);
    }
}

/// Finalizes one completed query: hands its drift counts to the
/// planner, records its outcome row, and emits the completion event.
#[allow(clippy::too_many_arguments)]
fn complete(
    q: LiveQuery,
    at: usize,
    schedule: &[ScheduleEntry],
    planner: &mut dyn ServePlanner,
    outcomes: &mut [QueryOutcome],
    m: &ServeMetrics,
    flight: &FlightRecorder,
    start_seq: u64,
) {
    let invalidated = planner.query_completed(&schedule[q.idx].query, at, &q.pend);
    m.completed.incr(1);
    m.invalidations.incr(invalidated);
    let latency = q.first_result.map(|f| (f - q.admit) as u64 + 1);
    if let Some(l) = latency {
        m.latency.observe(l);
    }
    let lat_field = latency.map(i64::try_from).and_then(std::result::Result::ok).unwrap_or(-1);
    flight.emit(
        at as u64,
        start_seq,
        "serve.complete",
        &[
            ("query", q.idx.into()),
            ("results", q.results.into()),
            ("latency", lat_field.into()),
            ("invalidated", invalidated.into()),
        ],
    );
    let o = &mut outcomes[q.idx];
    o.completed_at = at;
    o.tuples = q.tuples;
    o.results = q.results;
    o.all_correct = q.all_correct;
    o.cache_hit = q.cache_hit;
    o.subproblems = q.subproblems;
    o.latency_epochs = latency;
    o.invalidated = invalidated;
    o.status = QueryStatus::Complete;
}

/// Runs `schedule` as a service with explicit [`ServiceOptions`]:
/// seeded faults, crash recovery, admission control, deadlines.
/// Transparent options (the default) take the exact [`run_service`]
/// code path — a `--loss-rate 0` run without crashes or policy is
/// bitwise identical to the lossless service. Anything else runs the
/// fault-tolerant loop, which:
///
/// - pushes every dissemination and result packet through the bounded
///   retry + backoff of [`attempt_packet`], charging each attempt;
/// - wraps sensing in [`FaultySource`] so failed reads retry and
///   exhausted reads abort only the tuples whose chains touched them;
/// - applies the [`ServicePolicy`] in schedule order: per-epoch budget
///   admission with a fairness bound, queue-age and deadline shedding;
/// - degrades gracefully: deadline crossings yield a typed
///   [`QueryStatus::TimedOut`] outcome with the rows delivered so far,
///   lossy windows end as [`QueryStatus::Partial`];
/// - journals admissions/completions/epochs to the WAL and snapshots
///   serve state on the checkpoint cadence, so an injected basestation
///   crash recovers the plan cache, stats epoch and live-query
///   progress instead of cold-starting.
///
/// The vectorized executor precomputes verdicts from admission-time
/// plans, which is incompatible with lossy sensing and crash-induced
/// replans — `ExecMode::Vectorized` is rejected unless the fault model
/// is lossless and crashes are disabled.
#[allow(clippy::too_many_arguments)]
pub fn run_service_with(
    schema: &Schema,
    schedule: &[ScheduleEntry],
    planner: &mut dyn ServePlanner,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    mode: ExecMode,
    rec: &Recorder,
    opts: &ServiceOptions,
) -> Result<ServiceReport> {
    opts.policy.validate()?;
    if opts.is_transparent(schedule) {
        return run_service(schema, schedule, planner, motes, model, epochs, mode, rec);
    }
    if mode == ExecMode::Vectorized && (!opts.faults.is_lossless() || opts.crash.is_active()) {
        return Err(Error::InvalidFlag {
            flag: "exec".into(),
            value: "vectorized".into(),
            why: "the vectorized service cannot inject faults or crashes; use scalar execution",
        });
    }

    let span = rec.span("serve.run");
    let flight = rec.flight().clone();
    let start_seq = flight.emit(
        0,
        0,
        "serve.start",
        &[
            ("queries", schedule.len().into()),
            ("motes", motes.len().into()),
            ("epochs", epochs.into()),
        ],
    );
    let cr = CrashRuntime::new(&opts.crash, rec).map_err(core_err)?;
    let outcomes: Vec<QueryOutcome> = schedule
        .iter()
        .map(|s| QueryOutcome {
            admitted: false,
            admit: s.admit,
            completed_at: s.admit,
            tuples: 0,
            results: 0,
            all_correct: true,
            cache_hit: false,
            subproblems: 0,
            latency_epochs: None,
            invalidated: 0,
            status: QueryStatus::Shed,
            shed_at: None,
            rows: Vec::new(),
        })
        .collect();
    let mut arrivals: Vec<Vec<usize>> = vec![Vec::new(); epochs];
    for (i, s) in schedule.iter().enumerate() {
        if s.admit < epochs {
            arrivals[s.admit].push(i);
        }
    }
    let scratch = SharedScratch::new(schema.len());
    let engine = RobustEngine {
        schema,
        schedule,
        planner,
        motes,
        model,
        epochs,
        mode,
        rec,
        opts,
        flight,
        start_seq,
        m: ServeMetrics::new(rec),
        rm: RobustMetrics::new(rec),
        vm: VerifyMetrics::new(rec),
        fstats: FaultStats::serve(rec),
        cr,
        outcomes,
        arrivals,
        live: Vec::new(),
        queue: Vec::new(),
        scratch,
        exec: BatchExecutor::new(),
        out: BatchOutcome::default(),
        bs_tx_uj: 0.0,
        demanded: 0,
        performed: 0,
        rob: ServeRobustReport::default(),
    };
    let report = engine.run()?;
    drop(span);
    Ok(report)
}

/// Robust-path instruments (`serve.shed.*`, `serve.degraded.*`,
/// `serve.readmit.*`), registered only when the robust loop actually
/// runs so a lossless run's metrics snapshot stays byte-identical to
/// the pre-fault service.
struct RobustMetrics {
    /// `serve.shed.queries` — queries dropped by admission control.
    shed: Counter,
    /// `serve.shed.deferrals.budget` — admission passes stopped by a
    /// full epoch budget.
    defer_budget: Counter,
    /// `serve.shed.deferrals.fairness` — hot-signature entries that
    /// yielded to a waiting different signature.
    defer_fair: Counter,
    /// `serve.degraded.partial` — window-end terminations that lost
    /// tuples or results along the way.
    partial: Counter,
    /// `serve.degraded.timeouts` — deadline terminations.
    timeouts: Counter,
    /// `serve.degraded.lost_results` — result packets dropped after
    /// exhausting the attempt cap.
    lost_results: Counter,
    /// `serve.degraded.aborted_tuples` — tuples discarded on sensing
    /// aborts.
    aborted: Counter,
    /// `serve.readmit.queries` — live queries re-planned onto a new
    /// stats epoch after drift invalidation.
    readmitted: Counter,
    /// `serve.latency.degraded` — epochs spent by shed and timed-out
    /// queries, kept out of the completion latency histogram.
    degraded_latency: Hist,
}

impl RobustMetrics {
    fn new(rec: &Recorder) -> RobustMetrics {
        RobustMetrics {
            shed: rec.counter("serve.shed.queries"),
            defer_budget: rec.counter("serve.shed.deferrals.budget"),
            defer_fair: rec.counter("serve.shed.deferrals.fairness"),
            partial: rec.counter("serve.degraded.partial"),
            timeouts: rec.counter("serve.degraded.timeouts"),
            lost_results: rec.counter("serve.degraded.lost_results"),
            aborted: rec.counter("serve.degraded.aborted_tuples"),
            readmitted: rec.counter("serve.readmit.queries"),
            degraded_latency: rec.hist("serve.latency.degraded"),
        }
    }
}

/// A schedule entry waiting in the admission queue.
struct Pending {
    /// Index into the schedule.
    idx: usize,
    /// The entry's query signature (fairness key).
    sig: u64,
    /// Plan computed on first consideration and reused across
    /// deferrals. Basestation memory: wiped by crashes and by cache
    /// invalidations, so a later admission re-plans on fresh state.
    plan: Option<AdmittedPlan>,
}

/// The fault-tolerant service loop. One instance per
/// [`run_service_with`] call on the robust path.
struct RobustEngine<'a> {
    schema: &'a Schema,
    schedule: &'a [ScheduleEntry],
    planner: &'a mut dyn ServePlanner,
    motes: &'a mut [Mote],
    model: &'a EnergyModel,
    epochs: usize,
    mode: ExecMode,
    rec: &'a Recorder,
    opts: &'a ServiceOptions,
    flight: FlightRecorder,
    start_seq: u64,
    m: ServeMetrics,
    rm: RobustMetrics,
    vm: VerifyMetrics,
    fstats: FaultStats,
    cr: CrashRuntime<'a>,
    outcomes: Vec<QueryOutcome>,
    /// Schedule indices by arrival epoch, in schedule order.
    arrivals: Vec<Vec<usize>>,
    live: Vec<LiveQuery>,
    /// Admission queue, in schedule order.
    queue: Vec<Pending>,
    scratch: SharedScratch,
    exec: BatchExecutor,
    out: BatchOutcome,
    bs_tx_uj: f64,
    demanded: u64,
    performed: u64,
    rob: ServeRobustReport,
}

impl RobustEngine<'_> {
    fn run(mut self) -> Result<ServiceReport> {
        let epochs = self.epochs;
        for e in 0..epochs {
            // Crashes fire at epoch starts only; epoch 0 cannot crash
            // (there is nothing to recover before the first
            // admissions) — the same clock the single-query crashy
            // simulator uses.
            let crashed = e > 0 && self.crash_scheduled(e);
            if crashed {
                self.crash_and_recover(e);
            }
            self.redisseminate(e, crashed);
            self.admissions(e)?;
            self.exec_motes(e);
            self.terminations(e)?;
            self.journal_epoch(e);
        }
        // Entries still queued when the run ends never got capacity.
        for p in std::mem::take(&mut self.queue) {
            self.shed(p.idx, epochs);
        }
        // `end` is clamped to `epochs`, so nothing should still be
        // live here; drain defensively all the same.
        for q in std::mem::take(&mut self.live) {
            let status = if q.is_degraded() { QueryStatus::Partial } else { QueryStatus::Complete };
            self.finish(q, epochs, status);
        }
        if let Some(err) = self.cr.take_error() {
            return Err(core_err(err));
        }
        Ok(self.report())
    }

    /// Whether the basestation crashes at the start of epoch `e`:
    /// explicitly scheduled, or drawn from the crash stream (which is
    /// hash-disjoint from every packet stream, so enabling crashes
    /// never changes which packets drop).
    fn crash_scheduled(&self, e: usize) -> bool {
        self.cr.cfg.crash_epochs.contains(&e)
            || (self.cr.cfg.crash_rate > 0.0
                && self.opts.faults.roll(FaultStream::Crash, 0, e, 0, 0) < self.cr.cfg.crash_rate)
    }

    /// Kills and restarts the basestation process: belief state and
    /// staged plans are wiped (physical mote state survives), then the
    /// serve checkpoint + WAL tail are read back to restore the
    /// policy's plan cache, stats epoch and live-query drift counters.
    fn crash_and_recover(&mut self, e: usize) {
        self.cr.crashes += 1;
        self.cr.counters.attempted.incr(1);
        let down_seq = self.flight.emit(e as u64, self.start_seq, "crash.down", &[]);
        for q in self.live.iter_mut() {
            for k in q.bs_known.iter_mut() {
                *k = false;
            }
        }
        for p in self.queue.iter_mut() {
            p.plan = None;
        }
        let recovered = match self.cr.journal.as_mut() {
            Some(j) => j.recover_serve(),
            None => RecoveredServeState::genesis(),
        };
        let (cold, replayed, corrupt, scanned) = (
            recovered.cold_start,
            recovered.replayed.len(),
            recovered.corrupt_snapshots,
            recovered.snapshots_scanned,
        );
        self.cr.cold_starts += usize::from(cold);
        if cold {
            self.cr.counters.cold_start.incr(1);
        }
        self.cr.corrupt_snapshots += corrupt;
        self.cr.counters.corrupt.incr(corrupt as u64);
        self.cr.wal_replayed += replayed;
        self.cr.counters.wal_replayed.incr(replayed as u64);
        let cp_epoch = recovered.checkpoint.as_ref().map_or(-1, |c| c.epoch as i64);
        match recovered.checkpoint {
            Some(cp) => {
                // Rebuild the policy's plan cache from the snapshot.
                // Every recovered plan must re-earn a full verification
                // certificate against its own query — the bytes sat on
                // disk, and the checksum layer only covers whole-record
                // corruption. A plan that fails any pass (or whose
                // claimed cost falls outside the certified bound) is
                // demoted: dropped from the cache so the policy
                // re-plans it on demand, instead of disseminating
                // corrupt bytes to the fleet.
                let mut plans = Vec::new();
                for entry in &cp.plans {
                    self.vm.checked.incr(1);
                    self.vm.wire_bytes.observe(entry.plan.wire.len() as u64);
                    let cert = verify_wire(&entry.plan.wire, &entry.query, self.schema)
                        .and_then(|c| c.check_claim(entry.plan.expected_cost).map(|()| c));
                    match (cert, Plan::decode(&entry.plan.wire)) {
                        (Ok(_), Ok(plan)) => plans.push((
                            entry.query.clone(),
                            entry.key_epoch,
                            PlannedQuery {
                                plan,
                                wire: entry.plan.wire.clone(),
                                expected_cost: entry.plan.expected_cost,
                                objective: entry.plan.objective,
                            },
                        )),
                        _ => {
                            self.vm.rejected.incr(1);
                            self.vm.demoted.incr(1);
                        }
                    }
                }
                self.planner.restore_policy_state(Some(ServePolicyState {
                    stats_epoch: cp.stats_epoch,
                    plans,
                }));
                // Live-query drift counters recover to their
                // checkpointed values; deltas since the snapshot are
                // lost. (The report's tuple/result tallies are ground
                // truth about what physically happened — a basestation
                // restart does not rewrite them.)
                for q in self.live.iter_mut() {
                    match cp.live.iter().find(|l| l.idx == q.idx as u64) {
                        Some(l) if l.pend.len() == q.pend.len() => q.pend = l.pend.clone(),
                        _ => q.pend.iter_mut().for_each(|p| *p = (0, 0)),
                    }
                }
            }
            None => {
                self.planner.restore_policy_state(None);
                for q in self.live.iter_mut() {
                    q.pend.iter_mut().for_each(|p| *p = (0, 0));
                }
            }
        }
        self.flight.emit(
            e as u64,
            down_seq,
            "crash.recover",
            &[
                ("cold_start", cold.into()),
                ("stats_epoch", (self.planner.stats_epoch() as i64).into()),
                ("wal_replayed", replayed.into()),
                ("corrupt_snapshots", corrupt.into()),
                ("snapshots_scanned", scanned.into()),
                ("checkpoint_epoch", cp_epoch.into()),
            ],
        );
    }

    /// Fresh per-epoch dissemination attempts for every live query the
    /// basestation believes some mote is missing — covers lossy
    /// admissions, post-crash belief wipes and drift readmissions. The
    /// energy of a post-crash round is additionally tallied as the
    /// recovery tax.
    fn redisseminate(&mut self, e: usize, crashed: bool) {
        let Self { live, motes, opts, fstats, flight, m, model, bs_tx_uj, cr, start_seq, .. } =
            self;
        let faults = &opts.faults;
        for q in live.iter_mut() {
            let wire_len = q.planned.wire.len();
            for (mi, mote) in motes.iter_mut().enumerate() {
                if q.bs_known[mi] || !faults.online(mote.id(), e) {
                    continue;
                }
                let d = attempt_packet(faults, FaultStream::Dissemination, mote.id(), e, fstats);
                emit_retry(flight, *start_seq, e, "diss", mote.id(), &d);
                let tx = (d.attempts as usize * wire_len) as f64 * model.radio_tx_uj_per_byte;
                *bs_tx_uj += tx;
                m.radio.incr(d.attempts as u64);
                let mut delta = tx;
                if d.delivered {
                    mote.receive(wire_len, model);
                    delta += wire_len as f64 * model.radio_rx_uj_per_byte;
                    q.mote_has[mi] = true;
                    q.bs_known[mi] = true;
                }
                if crashed {
                    cr.recovery_rediss_uj += delta;
                }
            }
        }
    }

    /// Queues this epoch's arrivals, sheds entries that can no longer
    /// run, and admits from the queue in schedule order under the
    /// policy's budget and fairness rules.
    fn admissions(&mut self, e: usize) -> Result<()> {
        for idx in self.arrivals[e].clone() {
            let sig = self.schedule[idx].query.signature();
            self.queue.push(Pending { idx, sig, plan: None });
        }
        if self.queue.is_empty() {
            return Ok(());
        }
        let budget = self.opts.policy.epoch_cost_budget;
        let max_wait = self.opts.policy.max_queue_epochs;
        let fair_share = self.opts.policy.fair_share;

        // Shed pass: entries whose deadline already passed while
        // queued, and (under a budget) entries past the queueing cap.
        let queue = std::mem::take(&mut self.queue);
        let mut kept: Vec<Pending> = Vec::with_capacity(queue.len());
        for p in queue {
            let s = &self.schedule[p.idx];
            let expired = s.deadline.is_some_and(|d| e >= s.admit + d)
                || (budget.is_some() && e > s.admit + max_wait);
            if expired {
                self.shed(p.idx, e);
            } else {
                kept.push(p);
            }
        }

        // Admission pass. Fairness first (before planning, so a
        // deferred hot entry costs nothing), then the budget check in
        // strict FIFO order: the first entry that does not fit stops
        // the pass, except that an oversized entry facing an *empty*
        // service is admitted anyway — it could otherwise never run.
        let sigs: Vec<u64> = kept.iter().map(|p| p.sig).collect();
        let other_behind: Vec<bool> =
            (0..sigs.len()).map(|i| sigs[i + 1..].iter().any(|&s| s != sigs[i])).collect();
        let mut sig_live: BTreeMap<u64, usize> = BTreeMap::new();
        for q in &self.live {
            *sig_live.entry(q.sig).or_insert(0) += 1;
        }
        let mut live_cost: f64 = self.live.iter().map(|q| q.planned.expected_cost).sum();
        let mut admitted_any = false;
        let mut deferred: Vec<Pending> = Vec::new();
        let mut iter = kept.into_iter().enumerate();
        while let Some((pos, mut p)) = iter.next() {
            if budget.is_some()
                && sig_live.get(&p.sig).copied().unwrap_or(0) >= fair_share
                && other_behind[pos]
            {
                self.rm.defer_fair.incr(1);
                self.rob.fairness_deferrals += 1;
                deferred.push(p);
                continue;
            }
            let plan = match p.plan.take() {
                Some(plan) => plan,
                None => {
                    let mut plan = self.planner.plan_admitted(&self.schedule[p.idx].query, e)?;
                    self.vm.admit(&mut plan, &self.schedule[p.idx].query, self.schema)?;
                    self.m.subproblems.incr(plan.subproblems);
                    if plan.cache_hit {
                        self.m.cache_hits.incr(1);
                    } else {
                        self.m.cache_misses.incr(1);
                    }
                    plan
                }
            };
            if let Some(b) = budget {
                let cost = plan.planned.expected_cost;
                if live_cost + cost > b && (admitted_any || !self.live.is_empty()) {
                    self.rm.defer_budget.incr(1);
                    self.rob.budget_deferrals += 1;
                    p.plan = Some(plan);
                    deferred.push(p);
                    deferred.extend(iter.map(|(_, rest)| rest));
                    break;
                }
                live_cost += cost;
            }
            *sig_live.entry(p.sig).or_insert(0) += 1;
            admitted_any = true;
            self.admit_now(p.idx, p.sig, plan, e);
        }
        self.queue = deferred;
        Ok(())
    }

    /// Admits one entry at epoch `e`: counters, fleet dissemination
    /// through the retry loop, WAL record, and the live-query state.
    fn admit_now(&mut self, idx: usize, sig: u64, plan: AdmittedPlan, e: usize) {
        let entry = &self.schedule[idx];
        self.m.admitted.incr(1);
        let wire_len = plan.planned.wire.len();
        let faults = &self.opts.faults;
        let mut mote_has = vec![false; self.motes.len()];
        for (mi, mote) in self.motes.iter_mut().enumerate() {
            if !faults.online(mote.id(), e) {
                continue;
            }
            let d = attempt_packet(faults, FaultStream::Dissemination, mote.id(), e, &self.fstats);
            emit_retry(&self.flight, self.start_seq, e, "diss", mote.id(), &d);
            self.bs_tx_uj +=
                (d.attempts as usize * wire_len) as f64 * self.model.radio_tx_uj_per_byte;
            self.m.radio.incr(d.attempts as u64);
            if d.delivered {
                mote.receive(wire_len, self.model);
                mote_has[mi] = true;
            }
        }
        self.flight.emit(
            e as u64,
            self.start_seq,
            "serve.admit",
            &[
                ("query", idx.into()),
                ("cache_hit", plan.cache_hit.into()),
                ("subproblems", plan.subproblems.into()),
                ("wire_bytes", wire_len.into()),
            ],
        );
        if let Some(j) = self.cr.journal.as_mut() {
            j.append(&WalRecord::ServeAdmit {
                idx: idx as u64,
                epoch: e as u64,
                sig,
                cache_hit: plan.cache_hit,
            });
        }
        let mut pred_of: Vec<Option<usize>> = vec![None; self.schema.len()];
        for (j, &a) in entry.query.attrs().iter().enumerate() {
            pred_of[a] = Some(j);
        }
        let end = (e + entry.window.max(1)).min(self.epochs);
        let pre = match self.mode {
            ExecMode::Scalar => Vec::new(),
            ExecMode::Vectorized => precompute_batches(
                &mut self.exec,
                &mut self.out,
                &plan.planned,
                &entry.query,
                self.schema,
                self.motes,
                e,
                end,
            ),
        };
        let o = &mut self.outcomes[idx];
        o.admitted = true;
        o.admit = e;
        let bs_known = mote_has.clone();
        self.live.push(LiveQuery {
            idx,
            planned: plan.planned,
            admit: e,
            end,
            uplink_bytes: result_packet_bytes(self.schema, &entry.query),
            pred_of,
            pend: vec![(0, 0); entry.query.len()],
            tuples: 0,
            results: 0,
            all_correct: true,
            first_result: None,
            cache_hit: plan.cache_hit,
            subproblems: plan.subproblems,
            pre,
            sig,
            deadline_at: entry.deadline.map(|d| entry.admit + d),
            pre_base: e,
            mote_has,
            bs_known,
            lost_results: 0,
            aborted_tuples: 0,
            missed_epochs: 0,
            rows: Vec::new(),
        });
    }

    /// One merged execution pass per mote, in index order — the
    /// lossless slot discipline plus dropouts, sensing retries and
    /// result-uplink retries.
    fn exec_motes(&mut self, e: usize) {
        if self.live.is_empty() {
            return;
        }
        let mode = self.mode;
        let Self {
            schema,
            schedule,
            motes,
            model,
            opts,
            m,
            rm,
            fstats,
            flight,
            live,
            scratch,
            rob,
            demanded,
            performed,
            start_seq,
            ..
        } = self;
        let faults = &opts.faults;
        let collect_rows = opts.collect_rows;
        let mut slot_outs: Vec<ExecOutcome> = Vec::new();
        let mut execd: Vec<usize> = Vec::new();
        for (mi, mote) in motes.iter_mut().enumerate() {
            if e >= mote.epochs() {
                continue;
            }
            let id = mote.id();
            if !faults.online(id, e) {
                fstats.offline_epochs.incr(1);
                rob.offline_epochs += 1;
                for q in live.iter_mut() {
                    q.missed_epochs += 1;
                }
                continue;
            }
            scratch.reset();
            match mode {
                ExecMode::Scalar => {
                    slot_outs.clear();
                    execd.clear();
                    let aborted_mask = {
                        let mut src = FaultySource::new(
                            mote.epoch_source(e, schema, model),
                            faults,
                            fstats,
                            id,
                            e,
                        );
                        for (qi, q) in live.iter().enumerate() {
                            if !q.mote_has[mi] {
                                continue;
                            }
                            execd.push(qi);
                            let mut shared = SharedSource::new(&mut src, scratch);
                            // Every plan that reaches a live query was
                            // verified at admission (or at checkpoint
                            // restore), so the checked-free interpreter
                            // path is sound.
                            let o = execute_wire_verified(
                                &q.planned.wire,
                                &schedule[q.idx].query,
                                schema,
                                &mut shared,
                            );
                            slot_outs.push(o);
                        }
                        src.aborted_mask()
                    };
                    for (&qi, o) in execd.iter().zip(&slot_outs) {
                        let q = &mut live[qi];
                        account_slot_robust(
                            q,
                            &schedule[q.idx].query,
                            mote,
                            model,
                            e,
                            o.verdict,
                            &o.acquired,
                            aborted_mask,
                            m,
                            rm,
                            faults,
                            fstats,
                            flight,
                            *start_seq,
                            collect_rows,
                            rob,
                        );
                        *demanded += o.acquired.len() as u64;
                    }
                    for q in live.iter_mut() {
                        if !q.mote_has[mi] {
                            q.missed_epochs += 1;
                        }
                    }
                    m.performed.incr(scratch.acquired().len() as u64);
                    *performed += scratch.acquired().len() as u64;
                }
                ExecMode::Vectorized => {
                    // Lossless faults are a precondition for this mode,
                    // so every mote holds every plan and nothing can
                    // abort — the merge is the lossless loop's.
                    let mut seen = 0u64;
                    let mut merged: Vec<AttrId> = Vec::new();
                    for q in live.iter_mut() {
                        let off = e - q.pre_base;
                        let (verdict, chain) = {
                            let pre = &q.pre[mi];
                            (pre.verdicts[off], pre.chains[off].clone())
                        };
                        for &a in &chain {
                            let bit = 1u64 << a;
                            if seen & bit == 0 {
                                seen |= bit;
                                merged.push(a);
                            }
                        }
                        account_slot_robust(
                            q,
                            &schedule[q.idx].query,
                            mote,
                            model,
                            e,
                            verdict,
                            &chain,
                            0,
                            m,
                            rm,
                            faults,
                            fstats,
                            flight,
                            *start_seq,
                            collect_rows,
                            rob,
                        );
                        *demanded += chain.len() as u64;
                    }
                    mote.charge_epoch(&merged, schema, model);
                    m.performed.incr(merged.len() as u64);
                    *performed += merged.len() as u64;
                }
            }
        }
    }

    /// Window-end and deadline terminations, then (when enabled) drift
    /// readmission of the surviving live queries.
    fn terminations(&mut self, e: usize) -> Result<()> {
        let live = std::mem::take(&mut self.live);
        let mut rest = Vec::with_capacity(live.len());
        let mut invalidated_total = 0u64;
        for q in live {
            let due_window = q.end == e + 1;
            let due_deadline = q.deadline_at.is_some_and(|d| e + 1 >= d);
            if !(due_window || due_deadline) {
                rest.push(q);
                continue;
            }
            let status = if due_window {
                if q.is_degraded() {
                    QueryStatus::Partial
                } else {
                    QueryStatus::Complete
                }
            } else {
                QueryStatus::TimedOut
            };
            invalidated_total += self.finish(q, e + 1, status);
        }
        self.live = rest;
        if invalidated_total > 0 {
            // Plans staged for queued entries were built against the
            // invalidated statistics; drop them so admission re-plans.
            for p in self.queue.iter_mut() {
                p.plan = None;
            }
            if self.opts.policy.readmit_on_drift && !self.live.is_empty() {
                self.readmit(e)?;
            }
        }
        Ok(())
    }

    /// Finalizes one terminated query with a typed status. Returns how
    /// many cached plans its completion stats invalidated.
    fn finish(&mut self, q: LiveQuery, at: usize, status: QueryStatus) -> u64 {
        let query = &self.schedule[q.idx].query;
        let invalidated = self.planner.query_completed(query, at, &q.pend);
        self.m.invalidations.incr(invalidated);
        let latency = q.first_result.map(|f| (f - q.admit) as u64 + 1);
        match status {
            QueryStatus::Complete | QueryStatus::Partial => {
                self.m.completed.incr(1);
                if let Some(l) = latency {
                    self.m.latency.observe(l);
                }
                if status == QueryStatus::Partial {
                    self.rm.partial.incr(1);
                }
            }
            QueryStatus::TimedOut => {
                self.rm.timeouts.incr(1);
                self.rob.timed_out += 1;
                self.rm.degraded_latency.observe((at - q.admit) as u64);
                self.flight.emit(
                    at as u64,
                    self.start_seq,
                    "serve.timeout",
                    &[("query", q.idx.into()), ("results", q.results.into())],
                );
            }
            QueryStatus::Shed => unreachable!("shed queries never reach finish"),
        }
        let lat_field = latency.map(i64::try_from).and_then(std::result::Result::ok).unwrap_or(-1);
        self.flight.emit(
            at as u64,
            self.start_seq,
            "serve.complete",
            &[
                ("query", q.idx.into()),
                ("results", q.results.into()),
                ("latency", lat_field.into()),
                ("invalidated", invalidated.into()),
                ("status", status.label().into()),
            ],
        );
        if let Some(j) = self.cr.journal.as_mut() {
            j.append(&WalRecord::ServeComplete {
                idx: q.idx as u64,
                epoch: at as u64,
                status: status.to_u8(),
            });
        }
        let o = &mut self.outcomes[q.idx];
        o.completed_at = at;
        o.tuples = q.tuples;
        o.results = q.results;
        o.all_correct = q.all_correct;
        o.cache_hit = q.cache_hit;
        o.subproblems = q.subproblems;
        o.latency_epochs = latency;
        o.invalidated = invalidated;
        o.status = status;
        o.rows = q.rows;
        invalidated
    }

    /// Drift invalidated the plan cache: re-plan every in-flight query
    /// onto the new statistics epoch instead of letting it finish on a
    /// stale plan. The new plans reach the fleet through the next
    /// epoch's re-dissemination pass (belief state is reset here), so
    /// no query is dropped by the invalidation.
    fn readmit(&mut self, e: usize) -> Result<()> {
        for qi in 0..self.live.len() {
            let (idx, sig) = (self.live[qi].idx, self.live[qi].sig);
            let mut plan = self.planner.plan_admitted(&self.schedule[idx].query, e + 1)?;
            self.vm.admit(&mut plan, &self.schedule[idx].query, self.schema)?;
            self.m.subproblems.incr(plan.subproblems);
            if plan.cache_hit {
                self.m.cache_hits.incr(1);
            } else {
                self.m.cache_misses.incr(1);
            }
            self.rm.readmitted.incr(1);
            self.rob.readmissions += 1;
            self.flight.emit(
                (e + 1) as u64,
                self.start_seq,
                "serve.readmit",
                &[
                    ("query", idx.into()),
                    ("cache_hit", plan.cache_hit.into()),
                    ("subproblems", plan.subproblems.into()),
                ],
            );
            if let Some(j) = self.cr.journal.as_mut() {
                j.append(&WalRecord::ServeAdmit {
                    idx: idx as u64,
                    epoch: (e + 1) as u64,
                    sig,
                    cache_hit: plan.cache_hit,
                });
            }
            let end = self.live[qi].end;
            let pre = match self.mode {
                ExecMode::Scalar => Vec::new(),
                ExecMode::Vectorized => precompute_batches(
                    &mut self.exec,
                    &mut self.out,
                    &plan.planned,
                    &self.schedule[idx].query,
                    self.schema,
                    self.motes,
                    e + 1,
                    end,
                ),
            };
            let q = &mut self.live[qi];
            q.planned = plan.planned;
            q.pre = pre;
            q.pre_base = e + 1;
            q.mote_has.iter_mut().for_each(|h| *h = false);
            q.bs_known.iter_mut().for_each(|h| *h = false);
        }
        Ok(())
    }

    /// Sheds one queued entry at epoch `e`: typed outcome, degraded
    /// latency observation, WAL record.
    fn shed(&mut self, idx: usize, e: usize) {
        let s = &self.schedule[idx];
        self.rm.shed.incr(1);
        self.rob.shed += 1;
        let waited = (e - s.admit) as u64;
        self.rm.degraded_latency.observe(waited);
        self.flight.emit(
            e as u64,
            self.start_seq,
            "serve.shed",
            &[("query", idx.into()), ("waited", waited.into())],
        );
        if let Some(j) = self.cr.journal.as_mut() {
            j.append(&WalRecord::ServeComplete {
                idx: idx as u64,
                epoch: e as u64,
                status: QueryStatus::Shed.to_u8(),
            });
        }
        let o = &mut self.outcomes[idx];
        o.status = QueryStatus::Shed;
        o.shed_at = Some(e);
        o.completed_at = e;
    }

    /// Journals the epoch boundary and, on the checkpoint cadence,
    /// snapshots the serve state: the policy's plan cache and stats
    /// epoch plus every live query's progress record.
    fn journal_epoch(&mut self, e: usize) {
        let every = self.cr.cfg.checkpoint_every;
        let state = if self.cr.journal.is_some() && every != 0 && (e + 1).is_multiple_of(every) {
            Some(self.planner.policy_state())
        } else {
            None
        };
        let stats_epoch_now = self.planner.stats_epoch();
        let Some(journal) = self.cr.journal.as_mut() else { return };
        journal.append(&WalRecord::EpochEnd { epoch: e as u64 });
        let Some(state) = state else { return };
        let (stats_epoch, plans) = match state {
            Some(st) => (
                st.stats_epoch,
                st.plans
                    .into_iter()
                    .map(|(query, key_epoch, planned)| ServePlanEntry {
                        query,
                        key_epoch,
                        plan: PlanRecord {
                            version: key_epoch,
                            wire: planned.wire,
                            expected_cost: planned.expected_cost,
                            objective: planned.objective,
                        },
                    })
                    .collect(),
            ),
            None => (stats_epoch_now, Vec::new()),
        };
        let live: Vec<ServeLiveRecord> = self
            .live
            .iter()
            .map(|q| ServeLiveRecord {
                idx: q.idx as u64,
                admit: q.admit as u64,
                end: q.end as u64,
                pend: q.pend.clone(),
            })
            .collect();
        let cp = ServeCheckpoint {
            epoch: e as u64,
            last_seq: journal.folded_seq(),
            stats_epoch,
            plans,
            live,
        };
        let last_seq = cp.last_seq;
        if journal.write_serve_snapshot(&cp) {
            self.cr.checkpoints_written += 1;
            self.cr.counters.checkpoints.incr(1);
            self.flight.emit(
                e as u64,
                self.start_seq,
                "recovery.checkpoint",
                &[("last_seq", last_seq.into()), ("stats_epoch", stats_epoch.into())],
            );
        }
    }

    /// Final gauges, ledgers and the assembled [`ServiceReport`].
    fn report(mut self) -> ServiceReport {
        self.rob.crashes = self.cr.crashes;
        self.rob.cold_starts = self.cr.cold_starts;
        self.rob.corrupt_snapshots = self.cr.corrupt_snapshots;
        self.rob.wal_replayed = self.cr.wal_replayed;
        self.rob.checkpoints_written = self.cr.checkpoints_written;
        self.rob.recovery_rediss_uj = self.cr.recovery_rediss_uj;
        self.rec.gauge("serve.stats_epoch", self.planner.stats_epoch() as f64);
        let per_mote: Vec<EnergyLedger> = self.motes.iter().map(|mt| *mt.ledger()).collect();
        if self.rec.enabled() {
            for (mt, l) in self.motes.iter().zip(&per_mote) {
                let id = mt.id();
                self.rec.gauge(&format!("sensornet.mote{id}.sensing_uj"), l.sensing_uj);
                self.rec
                    .gauge(&format!("sensornet.mote{id}.radio_uj"), l.radio_tx_uj + l.radio_rx_uj);
                self.rec.gauge(&format!("sensornet.mote{id}.total_uj"), l.total_uj());
            }
        }
        let mut network = EnergyLedger::default();
        for l in &per_mote {
            network.absorb(l);
        }
        let report = ServiceReport {
            epochs: self.epochs,
            queries: self.outcomes,
            network,
            per_mote,
            bs_tx_uj: self.bs_tx_uj,
            performed_acquisitions: self.performed,
            demanded_acquisitions: self.demanded,
            robustness: Some(self.rob),
        };
        self.flight.emit(
            self.epochs as u64,
            self.start_seq,
            "serve.end",
            &[
                ("results", report.results().into()),
                ("all_correct", report.all_correct().into()),
                ("performed", report.performed_acquisitions.into()),
                ("demanded", report.demanded_acquisitions.into()),
            ],
        );
        report
    }
}

/// The robust twin of [`account_slot`]: the same per-query accounting
/// plus sensing-abort discards and the result-uplink retry loop. At a
/// lossless fault model every branch reduces to the lossless path's
/// exact `f64` operations.
#[allow(clippy::too_many_arguments)]
fn account_slot_robust(
    q: &mut LiveQuery,
    query: &Query,
    mote: &mut Mote,
    model: &EnergyModel,
    e: usize,
    verdict: bool,
    chain: &[AttrId],
    aborted_mask: u64,
    m: &ServeMetrics,
    rm: &RobustMetrics,
    faults: &FaultModel,
    fstats: &FaultStats,
    flight: &FlightRecorder,
    start_seq: u64,
    collect_rows: bool,
    rob: &mut ServeRobustReport,
) {
    q.tuples += 1;
    m.tuples.incr(1);
    m.demanded.incr(chain.len() as u64);
    if aborted_mask != 0 {
        let mask = chain.iter().fold(0u64, |acc, &a| acc | (1u64 << (a as u32).min(63)));
        if mask & aborted_mask != 0 {
            // A sensor this tuple's own chain touched could not be read
            // within the attempt cap: discard the tuple. Queries that
            // never demanded the failed sensor keep their epoch.
            q.aborted_tuples += 1;
            rm.aborted.incr(1);
            rob.aborted_tuples += 1;
            return;
        }
    }
    for &a in chain {
        if let Some(j) = q.pred_of[a] {
            q.pend[j].0 += 1;
            q.pend[j].1 += u64::from(query.pred(j).eval(mote.peek(e, a)));
        }
    }
    let truth = query.eval_with(|a| mote.peek(e, a));
    q.all_correct &= verdict == truth;
    if verdict {
        q.results += 1;
        m.results.incr(1);
        q.first_result.get_or_insert(e);
        let d = attempt_packet(faults, FaultStream::Result, mote.id(), e, fstats);
        emit_retry(flight, start_seq, e, "result", mote.id(), &d);
        mote.transmit(d.attempts as usize * q.uplink_bytes, model);
        m.radio.incr(d.attempts as u64);
        if d.delivered {
            rob.delivered_results += 1;
            if collect_rows {
                q.rows.push((e, mote.id()));
            }
        } else {
            q.lost_results += 1;
            rm.lost_results.incr(1);
            rob.lost_results += 1;
        }
    }
}

/// Vectorized-mode admission work: runs the batch executor over each
/// mote's trace window and stores per-epoch verdicts and owned
/// acquisition chains for the epoch loop to merge.
#[allow(clippy::too_many_arguments)]
fn precompute_batches(
    exec: &mut BatchExecutor,
    out: &mut BatchOutcome,
    planned: &PlannedQuery,
    query: &Query,
    schema: &Schema,
    motes: &[Mote],
    admit: usize,
    end: usize,
) -> Vec<MotePre> {
    let prepared = PreparedPlan::new(&planned.plan, query, schema, &CostModel::PerAttribute);
    motes
        .iter()
        .map(|mote| {
            let stop = end.min(mote.epochs());
            let mut verdicts = Vec::new();
            let mut chains = Vec::new();
            let mut start = admit;
            while start < stop {
                let len = BATCH_ROWS.min(stop - start);
                let batch = ColumnBatch::slice(mote.trace(), start, len);
                exec.execute_batch(&prepared, &batch, None, out);
                for slot in 0..len {
                    verdicts.push(out.verdict(slot));
                    chains.push(out.acquired(&prepared, slot).to_vec());
                }
                start += len;
            }
            MotePre { verdicts, chains }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basestation::Basestation;
    use crate::sim::{fleet_from_trace, run_simulation_mode};
    use acqp_core::{Attribute, Dataset, Pred};

    /// A minimal cache-free policy for engine tests: plans every
    /// admission from scratch via the reported sweep.
    struct PlainPlanner<'h> {
        bs: Basestation<'h>,
        alpha: f64,
    }

    impl ServePlanner for PlainPlanner<'_> {
        fn plan_admitted(&mut self, query: &Query, _epoch: usize) -> Result<AdmittedPlan> {
            let (_, planned, subproblems) =
                self.bs.plan_query_sized_reported(query, self.alpha, &[0, 1, 2, 4])?;
            Ok(AdmittedPlan { planned, cache_hit: false, subproblems })
        }

        fn query_completed(&mut self, _: &Query, _: usize, _: &[(u64, u64)]) -> u64 {
            0
        }

        fn stats_epoch(&self) -> u64 {
            0
        }
    }

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 100.0),
            Attribute::new("b", 2, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..240u16 {
            let t = i % 2;
            let a = if i % 10 == 0 { 1 - t } else { t };
            let b = if i % 12 == 0 { t } else { 1 - t };
            rows.push(vec![a, b, t]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn single_query_service_matches_engine_bitwise() {
        let (schema, data, query) = setup();
        let bs = Basestation::new(schema.clone(), &data);
        let model = EnergyModel::mica_like();
        let epochs = 64usize;
        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            // Reference: the single-query engine.
            let planned = bs.plan_query_sized(&query, 0.01, &[0, 1, 2, 4]).unwrap().1;
            let mut ref_fleet = fleet_from_trace(&data, 3);
            let sim = run_simulation_mode(
                &schema,
                &query,
                &planned,
                &mut ref_fleet,
                &model,
                epochs,
                mode,
                &Recorder::disabled(),
            );

            // The service with one scheduled query covering the run.
            let mut planner =
                PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
            let mut fleet = fleet_from_trace(&data, 3);
            let schedule = [ScheduleEntry::new(query.clone(), 0, epochs)];
            let rep = run_service(
                &schema,
                &schedule,
                &mut planner,
                &mut fleet,
                &model,
                epochs,
                mode,
                &Recorder::disabled(),
            )
            .unwrap();

            assert_eq!(rep.tuples(), sim.tuples);
            assert_eq!(rep.results(), sim.results);
            assert!(rep.all_correct() && sim.all_correct);
            assert_eq!(rep.per_mote.len(), sim.per_mote.len());
            for (a, b) in rep.per_mote.iter().zip(&sim.per_mote) {
                assert_eq!(a.sensing_uj.to_bits(), b.sensing_uj.to_bits());
                assert_eq!(a.board_uj.to_bits(), b.board_uj.to_bits());
                assert_eq!(a.radio_tx_uj.to_bits(), b.radio_tx_uj.to_bits());
                assert_eq!(a.radio_rx_uj.to_bits(), b.radio_rx_uj.to_bits());
            }
            assert_eq!(rep.network.total_uj().to_bits(), sim.network.total_uj().to_bits());
            // With one query nothing can be shared.
            assert_eq!(rep.performed_acquisitions, rep.demanded_acquisitions);
        }
    }

    #[test]
    fn overlapping_queries_share_acquisitions() {
        let (schema, data, query) = setup();
        let q2 = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(2, 0, 0)]).unwrap();
        let model = EnergyModel::mica_like();
        let epochs = 48usize;
        let schedule = [
            ScheduleEntry::new(query.clone(), 0, epochs),
            ScheduleEntry::new(q2.clone(), 0, epochs),
        ];

        let mut planner = PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
        let mut fleet = fleet_from_trace(&data, 2);
        let shared = run_service(
            &schema,
            &schedule,
            &mut planner,
            &mut fleet,
            &model,
            epochs,
            ExecMode::Scalar,
            &Recorder::disabled(),
        )
        .unwrap();
        assert!(shared.performed_acquisitions < shared.demanded_acquisitions);

        // N-independent-runs baseline: each query on its own fleet.
        let mut independent = 0.0;
        for entry in &schedule {
            let bs = Basestation::new(schema.clone(), &data);
            let planned = bs.plan_query_sized(&entry.query, 0.01, &[0, 1, 2, 4]).unwrap().1;
            let mut f = fleet_from_trace(&data, 2);
            let sim = run_simulation_mode(
                &schema,
                &entry.query,
                &planned,
                &mut f,
                &model,
                epochs,
                ExecMode::Scalar,
                &Recorder::disabled(),
            );
            independent += sim.network.total_uj();
        }
        assert!(
            shared.network.total_uj() < independent,
            "shared {} !< independent {independent}",
            shared.network.total_uj()
        );
        // Both queries ran to completion with correct verdicts.
        assert!(shared.all_correct());
        assert_eq!(shared.queries.len(), 2);
        assert!(shared.queries.iter().all(|q| q.admitted && q.tuples == 2 * epochs));
    }

    #[test]
    fn scalar_and_vectorized_service_agree_bitwise() {
        let (schema, data, query) = setup();
        let q2 = Query::new(vec![Pred::in_range(1, 1, 1), Pred::in_range(2, 1, 1)]).unwrap();
        let model = EnergyModel::mica_like();
        let epochs = 40usize;
        let schedule = [ScheduleEntry::new(query, 0, 30), ScheduleEntry::new(q2, 8, 40)];
        let mut reports = Vec::new();
        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            let mut planner =
                PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
            let mut fleet = fleet_from_trace(&data, 2);
            reports.push(
                run_service(
                    &schema,
                    &schedule,
                    &mut planner,
                    &mut fleet,
                    &model,
                    epochs,
                    mode,
                    &Recorder::disabled(),
                )
                .unwrap(),
            );
        }
        let (s, v) = (&reports[0], &reports[1]);
        assert_eq!(s.performed_acquisitions, v.performed_acquisitions);
        assert_eq!(s.demanded_acquisitions, v.demanded_acquisitions);
        for (a, b) in s.per_mote.iter().zip(&v.per_mote) {
            assert_eq!(a.sensing_uj.to_bits(), b.sensing_uj.to_bits());
            assert_eq!(a.board_uj.to_bits(), b.board_uj.to_bits());
            assert_eq!(a.radio_tx_uj.to_bits(), b.radio_tx_uj.to_bits());
            assert_eq!(a.radio_rx_uj.to_bits(), b.radio_rx_uj.to_bits());
        }
        for (a, b) in s.queries.iter().zip(&v.queries) {
            assert_eq!(a.tuples, b.tuples);
            assert_eq!(a.results, b.results);
            assert_eq!(a.latency_epochs, b.latency_epochs);
            assert!(a.all_correct && b.all_correct);
        }
    }

    #[test]
    fn schedule_edges_are_handled() {
        let (schema, data, query) = setup();
        let model = EnergyModel::mica_like();
        let schedule = [
            // Zero window is clamped to one epoch.
            ScheduleEntry::new(query.clone(), 2, 0),
            // Admission beyond the run: never admitted.
            ScheduleEntry::new(query.clone(), 100, 5),
        ];
        let mut planner = PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.0 };
        let mut fleet = fleet_from_trace(&data, 2);
        let rep = run_service(
            &schema,
            &schedule,
            &mut planner,
            &mut fleet,
            &model,
            10,
            ExecMode::Scalar,
            &Recorder::disabled(),
        )
        .unwrap();
        assert!(rep.queries[0].admitted);
        assert_eq!(rep.queries[0].tuples, 2);
        assert_eq!(rep.queries[0].completed_at, 3);
        assert!(!rep.queries[1].admitted);
        assert_eq!(rep.queries[1].tuples, 0);

        // A zero-epoch run admits nothing and spends nothing.
        let mut fleet = fleet_from_trace(&data, 2);
        let rep = run_service(
            &schema,
            &schedule,
            &mut planner,
            &mut fleet,
            &model,
            0,
            ExecMode::Scalar,
            &Recorder::disabled(),
        )
        .unwrap();
        assert!(rep.queries.iter().all(|q| !q.admitted));
        assert_eq!(rep.network.total_uj(), 0.0);
    }

    #[test]
    fn robust_path_at_loss_zero_is_bitwise_transparent() {
        let (schema, data, query) = setup();
        let q2 = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(2, 0, 0)]).unwrap();
        let model = EnergyModel::mica_like();
        let epochs = 32usize;
        let schedule =
            [ScheduleEntry::new(query.clone(), 0, epochs), ScheduleEntry::new(q2.clone(), 4, 20)];
        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            let mut planner =
                PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
            let mut fleet = fleet_from_trace(&data, 3);
            let lossless = run_service(
                &schema,
                &schedule,
                &mut planner,
                &mut fleet,
                &model,
                epochs,
                mode,
                &Recorder::disabled(),
            )
            .unwrap();
            assert!(lossless.robustness.is_none());

            // `collect_rows` forces the robust loop with everything
            // else default: same fleet physics, bit for bit.
            let opts = ServiceOptions { collect_rows: true, ..ServiceOptions::default() };
            let mut planner =
                PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
            let mut fleet = fleet_from_trace(&data, 3);
            let robust = run_service_with(
                &schema,
                &schedule,
                &mut planner,
                &mut fleet,
                &model,
                epochs,
                mode,
                &Recorder::disabled(),
                &opts,
            )
            .unwrap();
            let rob = robust.robustness.as_ref().expect("robust path reports robustness");
            assert_eq!(rob.shed, 0);
            assert_eq!(rob.lost_results, 0);
            assert_eq!(rob.aborted_tuples, 0);

            assert_eq!(robust.bs_tx_uj.to_bits(), lossless.bs_tx_uj.to_bits());
            assert_eq!(robust.performed_acquisitions, lossless.performed_acquisitions);
            assert_eq!(robust.demanded_acquisitions, lossless.demanded_acquisitions);
            for (a, b) in robust.per_mote.iter().zip(&lossless.per_mote) {
                assert_eq!(a.sensing_uj.to_bits(), b.sensing_uj.to_bits());
                assert_eq!(a.board_uj.to_bits(), b.board_uj.to_bits());
                assert_eq!(a.radio_tx_uj.to_bits(), b.radio_tx_uj.to_bits());
                assert_eq!(a.radio_rx_uj.to_bits(), b.radio_rx_uj.to_bits());
            }
            for (a, b) in robust.queries.iter().zip(&lossless.queries) {
                assert_eq!(a.tuples, b.tuples);
                assert_eq!(a.results, b.results);
                assert_eq!(a.latency_epochs, b.latency_epochs);
                assert_eq!(a.completed_at, b.completed_at);
                assert_eq!(a.status, QueryStatus::Complete);
                assert_eq!(a.rows.len(), a.results, "every lossless result is a delivered row");
            }
        }
    }

    #[test]
    fn budget_admission_is_fair_and_sheds_expired_entries() {
        let (schema, data, query) = setup();
        let q2 = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(2, 0, 0)]).unwrap();
        let model = EnergyModel::mica_like();
        let bs = Basestation::new(schema.clone(), &data);
        let ca = bs.plan_query_sized(&query, 0.01, &[0, 1, 2, 4]).unwrap().1.expected_cost;
        let cb = bs.plan_query_sized(&q2, 0.01, &[0, 1, 2, 4]).unwrap().1.expected_cost;
        // Room for either query alone but never for two at once: the
        // service serializes, one admission per window.
        let budget = ca.max(cb) + 0.5 * ca.min(cb);
        assert!(budget < ca + cb);
        let schedule = [
            ScheduleEntry::new(query.clone(), 0, 2),
            ScheduleEntry::new(query.clone(), 0, 2),
            ScheduleEntry::new(q2.clone(), 0, 2),
            ScheduleEntry::new(query.clone(), 0, 2).with_deadline(2),
        ];
        let opts = ServiceOptions {
            policy: ServicePolicy {
                epoch_cost_budget: Some(budget),
                max_queue_epochs: 8,
                fair_share: 1,
                readmit_on_drift: false,
            },
            ..ServiceOptions::default()
        };
        let mut planner = PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
        let mut fleet = fleet_from_trace(&data, 2);
        let rep = run_service_with(
            &schema,
            &schedule,
            &mut planner,
            &mut fleet,
            &model,
            8,
            ExecMode::Scalar,
            &Recorder::disabled(),
            &opts,
        )
        .unwrap();
        let rob = rep.robustness.as_ref().unwrap();

        // First instance runs immediately; the duplicate yields to the
        // different signature... but strict FIFO budget order still
        // runs the duplicate before q2 once capacity frees up.
        assert_eq!(rep.queries[0].admit, 0);
        assert_eq!(rep.queries[0].status, QueryStatus::Complete);
        assert_eq!(rep.queries[1].admit, 2);
        assert_eq!(rep.queries[1].status, QueryStatus::Complete);
        // The lone q2 is not starved by the hot signature.
        assert!(rep.queries[2].admitted);
        assert_eq!(rep.queries[2].status, QueryStatus::Complete);
        // The deadlined duplicate expires in the queue and is shed.
        assert_eq!(rep.queries[3].status, QueryStatus::Shed);
        assert_eq!(rep.queries[3].shed_at, Some(2));
        assert!(!rep.queries[3].admitted);

        assert_eq!(rob.shed, 1);
        assert!(rob.fairness_deferrals >= 2, "fairness deferrals: {}", rob.fairness_deferrals);
        assert!(rob.budget_deferrals >= 2, "budget deferrals: {}", rob.budget_deferrals);
        assert_eq!(rep.count_status(QueryStatus::Complete), 3);
    }

    #[test]
    fn deadline_crossing_degrades_to_partial_prefix() {
        let (schema, data, _) = setup();
        // A predicate on `t` alone: passes on every odd epoch, so both
        // runs deliver rows from the start.
        let query = Query::new(vec![Pred::in_range(2, 1, 1)]).unwrap();
        let model = EnergyModel::mica_like();
        let epochs = 10usize;
        let run = |schedule: &[ScheduleEntry]| {
            let opts = ServiceOptions { collect_rows: true, ..ServiceOptions::default() };
            let mut planner =
                PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
            let mut fleet = fleet_from_trace(&data, 2);
            run_service_with(
                &schema,
                schedule,
                &mut planner,
                &mut fleet,
                &model,
                epochs,
                ExecMode::Scalar,
                &Recorder::disabled(),
                &opts,
            )
            .unwrap()
        };
        let full = run(&[ScheduleEntry::new(query.clone(), 0, epochs)]);
        let timed = run(&[ScheduleEntry::new(query.clone(), 0, epochs).with_deadline(3)]);

        let f = &full.queries[0];
        let t = &timed.queries[0];
        assert_eq!(f.status, QueryStatus::Complete);
        assert_eq!(t.status, QueryStatus::TimedOut);
        assert_eq!(t.completed_at, 3);
        assert_eq!(timed.robustness.as_ref().unwrap().timed_out, 1);
        // Graceful degradation: the timed-out query's delivered rows
        // are exactly the prefix of the unconstrained run's rows.
        assert!(t.rows.len() < f.rows.len());
        assert_eq!(t.rows[..], f.rows[..t.rows.len()]);
        assert!(t.rows.iter().all(|&(e, _)| e < 3));
    }
}
