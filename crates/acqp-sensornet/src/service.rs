//! The multi-query basestation service loop (`DESIGN.md` §14).
//!
//! [`run_service`] admits a *schedule* of queries over one fleet and
//! runs them concurrently, merging their acquisition demands per epoch:
//! within one `(epoch, mote)` slot the first query to demand an
//! attribute pays for the sensor read and every later live query is
//! served from the shared value cache for free
//! ([`acqp_core::SharedSource`]). Planning is delegated to a
//! [`ServePlanner`] hook so the policy layer (`acqp-serve`) can cache
//! plans and invalidate them on drift without this engine knowing
//! about either.
//!
//! Determinism: queries are admitted in schedule order, executed in
//! admission order within every slot, and motes are visited in index
//! order — the *arbitration order* is a pure function of the schedule,
//! so fixed seeds reproduce runs bit-for-bit. A service run with a
//! single scheduled query performs exactly the `f64` ledger additions
//! of [`crate::sim::run_simulation_mode`] per accumulator, in the same
//! order, and is therefore bitwise identical to it (pinned by
//! `tests/serve_equivalence.rs`). Latency is measured in **epochs**,
//! never wall-clock time.

use acqp_core::{
    AttrId, BatchExecutor, BatchOutcome, ColumnBatch, CostModel, ExecMode, ExecOutcome,
    PreparedPlan, Query, Result, Schema, SharedScratch, SharedSource, BATCH_ROWS,
};
use acqp_obs::{Counter, FlightRecorder, Hist, Recorder};

use crate::basestation::PlannedQuery;
use crate::energy::{EnergyLedger, EnergyModel};
use crate::interp::execute_wire;
use crate::mote::Mote;
use crate::sim::result_packet_bytes;

/// One entry of a service schedule: `query` is admitted at epoch
/// `admit` and runs for `window` epochs (a zero window is treated as
/// one epoch). Entries are admitted in schedule order — ties at the
/// same admission epoch keep their relative order, which is the
/// service's deterministic arbitration order.
#[derive(Debug, Clone)]
pub struct ScheduleEntry {
    /// The query to run.
    pub query: Query,
    /// Epoch at which the query is admitted.
    pub admit: usize,
    /// Number of epochs the query stays live.
    pub window: usize,
}

/// What the planning layer decided for an admitted query.
#[derive(Debug, Clone)]
pub struct AdmittedPlan {
    /// The plan to disseminate and execute.
    pub planned: PlannedQuery,
    /// True when the plan came out of a cache rather than a search.
    pub cache_hit: bool,
    /// Plan-search subproblems expanded to produce it (zero on a hit).
    pub subproblems: u64,
}

/// The planning policy behind [`run_service`]: the engine calls
/// [`ServePlanner::plan_admitted`] once per admission and
/// [`ServePlanner::query_completed`] once per completion (handing over
/// the query's observed per-predicate counts so the policy can track
/// drift and invalidate cached plans).
pub trait ServePlanner {
    /// Produces the plan for `query`, admitted at `epoch`.
    fn plan_admitted(&mut self, query: &Query, epoch: usize) -> Result<AdmittedPlan>;

    /// Notifies the policy that `query` completed at `epoch` with the
    /// given cumulative `(evaluated, passed)` counts per predicate.
    /// Returns how many cached plans this completion invalidated.
    fn query_completed(&mut self, query: &Query, epoch: usize, pred_counts: &[(u64, u64)]) -> u64;

    /// The policy's current statistics epoch (bumped on invalidation).
    fn stats_epoch(&self) -> u64;
}

/// Per-query accounting for one schedule entry.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Whether the query was admitted at all (entries whose admission
    /// epoch falls beyond the run are never admitted).
    pub admitted: bool,
    /// Epoch the query was admitted at.
    pub admit: usize,
    /// Epoch the query completed at (one past its last live epoch).
    pub completed_at: usize,
    /// Mote-epochs this query evaluated.
    pub tuples: usize,
    /// Tuples that satisfied the query.
    pub results: usize,
    /// Whether every verdict matched ground truth.
    pub all_correct: bool,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Plan-search subproblems expanded on admission.
    pub subproblems: u64,
    /// Admission-to-first-result latency in epochs (`None` when the
    /// query produced no result).
    pub latency_epochs: Option<u64>,
    /// Cached plans invalidated when this query's completion stats
    /// were absorbed.
    pub invalidated: u64,
}

/// Result of one service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Epochs the service ran for.
    pub epochs: usize,
    /// One outcome per schedule entry, in schedule order.
    pub queries: Vec<QueryOutcome>,
    /// Aggregate energy over all motes.
    pub network: EnergyLedger,
    /// Per-mote energy ledgers.
    pub per_mote: Vec<EnergyLedger>,
    /// Basestation transmit energy spent on dissemination.
    pub bs_tx_uj: f64,
    /// Sensor reads physically performed (after cross-query merging).
    pub performed_acquisitions: u64,
    /// Sensor reads the live queries demanded (before merging) — the
    /// gap to `performed_acquisitions` is the sharing win.
    pub demanded_acquisitions: u64,
}

impl ServiceReport {
    /// Total query-tuples evaluated across the schedule.
    pub fn tuples(&self) -> usize {
        self.queries.iter().map(|q| q.tuples).sum()
    }

    /// Total results across the schedule.
    pub fn results(&self) -> usize {
        self.queries.iter().map(|q| q.results).sum()
    }

    /// Whether every verdict of every query matched ground truth.
    pub fn all_correct(&self) -> bool {
        self.queries.iter().all(|q| q.all_correct)
    }
}

/// Vectorized-mode precomputation for one live query on one mote: the
/// per-epoch verdicts and (node-constant) acquisition chains of its
/// plan over the mote's trace window, produced by the batch executor.
struct MotePre {
    verdicts: Vec<bool>,
    chains: Vec<Vec<AttrId>>,
}

/// One admitted, still-running query.
struct LiveQuery {
    /// Index into the schedule (also the arbitration key).
    idx: usize,
    planned: PlannedQuery,
    admit: usize,
    /// One past the query's last live epoch.
    end: usize,
    uplink_bytes: usize,
    /// `pred_of[a]` = index of the predicate on attribute `a`, if any.
    pred_of: Vec<Option<usize>>,
    /// Cumulative per-predicate `(evaluated, passed)` counts.
    pend: Vec<(u64, u64)>,
    tuples: usize,
    results: usize,
    all_correct: bool,
    first_result: Option<usize>,
    cache_hit: bool,
    subproblems: u64,
    /// Per-mote batch precomputation (vectorized mode only).
    pre: Vec<MotePre>,
}

/// Pre-hoisted `serve.*` instruments (see `DESIGN.md` §8).
struct ServeMetrics {
    admitted: Counter,
    completed: Counter,
    tuples: Counter,
    results: Counter,
    radio: Counter,
    demanded: Counter,
    performed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    invalidations: Counter,
    subproblems: Counter,
    latency: Hist,
}

impl ServeMetrics {
    fn new(rec: &Recorder) -> ServeMetrics {
        ServeMetrics {
            admitted: rec.counter("serve.queries.admitted"),
            completed: rec.counter("serve.queries.completed"),
            tuples: rec.counter("serve.tuples"),
            results: rec.counter("serve.results"),
            radio: rec.counter("serve.radio.msgs"),
            demanded: rec.counter("serve.acquisitions.demanded"),
            performed: rec.counter("serve.acquisitions.performed"),
            cache_hits: rec.counter("serve.cache.hits"),
            cache_misses: rec.counter("serve.cache.misses"),
            invalidations: rec.counter("serve.cache.invalidations"),
            subproblems: rec.counter("serve.plan.subproblems"),
            latency: rec.hist("serve.latency_epochs"),
        }
    }
}

/// Runs `schedule` as a concurrent multi-query service over the fleet,
/// losslessly, for `epochs` epochs. Plans come from `planner`; every
/// admission is disseminated to the whole fleet (radio energy charged
/// like the single-query engine's), every live query executes once per
/// `(epoch, mote)` slot with acquisitions merged across queries, and
/// every passing tuple transmits that query's result packet.
///
/// Returns one [`QueryOutcome`] per schedule entry, in schedule order.
#[allow(clippy::too_many_arguments)]
pub fn run_service(
    schema: &Schema,
    schedule: &[ScheduleEntry],
    planner: &mut dyn ServePlanner,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    mode: ExecMode,
    rec: &Recorder,
) -> Result<ServiceReport> {
    let span = rec.span("serve.run");
    let flight = rec.flight().clone();
    let start_seq = flight.emit(
        0,
        0,
        "serve.start",
        &[
            ("queries", schedule.len().into()),
            ("motes", motes.len().into()),
            ("epochs", epochs.into()),
        ],
    );
    let m = ServeMetrics::new(rec);

    // Outcomes in schedule order; entries admitted beyond the run keep
    // their zeroed row with `admitted: false`.
    let mut outcomes: Vec<QueryOutcome> = schedule
        .iter()
        .map(|s| QueryOutcome {
            admitted: false,
            admit: s.admit,
            completed_at: s.admit,
            tuples: 0,
            results: 0,
            all_correct: true,
            cache_hit: false,
            subproblems: 0,
            latency_epochs: None,
            invalidated: 0,
        })
        .collect();

    // Admission index: schedule entries by admission epoch, preserving
    // schedule order within an epoch (the arbitration order).
    let mut admissions_at: Vec<Vec<usize>> = vec![Vec::new(); epochs];
    for (i, s) in schedule.iter().enumerate() {
        if s.admit < epochs {
            admissions_at[s.admit].push(i);
        }
    }

    let mut live: Vec<LiveQuery> = Vec::new();
    let mut scratch = SharedScratch::new(schema.len());
    let mut slot_outs: Vec<ExecOutcome> = Vec::new();
    let mut bs_tx_uj = 0.0;
    let mut demanded = 0u64;
    let mut performed = 0u64;
    let mut exec = BatchExecutor::new();
    let mut out = BatchOutcome::default();

    for (e, admitted_now) in admissions_at.iter().enumerate() {
        // 1. Admissions, in schedule order.
        for &idx in admitted_now {
            let entry = &schedule[idx];
            let plan = planner.plan_admitted(&entry.query, e)?;
            m.admitted.incr(1);
            m.subproblems.incr(plan.subproblems);
            if plan.cache_hit {
                m.cache_hits.incr(1);
            } else {
                m.cache_misses.incr(1);
            }
            // Dissemination: every mote receives the plan, exactly like
            // the single-query engine's lossless round.
            for mote in motes.iter_mut() {
                m.radio.incr(1);
                mote.receive(plan.planned.wire.len(), model);
                bs_tx_uj += (plan.planned.wire.len()) as f64 * model.radio_tx_uj_per_byte;
            }
            flight.emit(
                e as u64,
                start_seq,
                "serve.admit",
                &[
                    ("query", idx.into()),
                    ("cache_hit", plan.cache_hit.into()),
                    ("subproblems", plan.subproblems.into()),
                    ("wire_bytes", plan.planned.wire.len().into()),
                ],
            );
            let mut pred_of: Vec<Option<usize>> = vec![None; schema.len()];
            for (j, &a) in entry.query.attrs().iter().enumerate() {
                pred_of[a] = Some(j);
            }
            let end = (entry.admit + entry.window.max(1)).min(epochs);
            let pre = match mode {
                ExecMode::Scalar => Vec::new(),
                ExecMode::Vectorized => precompute_batches(
                    &mut exec,
                    &mut out,
                    &plan.planned,
                    &entry.query,
                    schema,
                    motes,
                    entry.admit,
                    end,
                ),
            };
            outcomes[idx].admitted = true;
            live.push(LiveQuery {
                idx,
                planned: plan.planned,
                admit: entry.admit,
                end,
                uplink_bytes: result_packet_bytes(schema, &entry.query),
                pred_of,
                pend: vec![(0, 0); entry.query.len()],
                tuples: 0,
                results: 0,
                all_correct: true,
                first_result: None,
                cache_hit: plan.cache_hit,
                subproblems: plan.subproblems,
                pre,
            });
        }

        // 2. One merged execution pass per mote, in index order. Phase
        // A runs every live query against the shared source (charging
        // sensing + board energy in first-demand order); phase B does
        // per-query accounting and result uplinks once the metered
        // source has released the mote.
        for (mi, mote) in motes.iter_mut().enumerate() {
            if live.is_empty() || e >= mote.epochs() {
                continue;
            }
            scratch.reset();
            match mode {
                ExecMode::Scalar => {
                    slot_outs.clear();
                    {
                        // One metered source per slot: its board
                        // power-up state spans every query in the slot,
                        // so a board powers up at most once per epoch
                        // per mote no matter how many queries read it.
                        let mut src = mote.epoch_source(e, schema, model);
                        for q in live.iter() {
                            let mut shared = SharedSource::new(&mut src, &mut scratch);
                            let o = execute_wire(
                                &q.planned.wire,
                                &schedule[q.idx].query,
                                schema,
                                &mut shared,
                            )
                            .expect("basestation-produced wire plans are well-formed");
                            slot_outs.push(o);
                        }
                    }
                    for (q, o) in live.iter_mut().zip(&slot_outs) {
                        account_slot(
                            q,
                            &schedule[q.idx].query,
                            mote,
                            model,
                            e,
                            o.verdict,
                            &o.acquired,
                            &m,
                        );
                        demanded += o.acquired.len() as u64;
                    }
                }
                ExecMode::Vectorized => {
                    // Merge the precomputed per-query chains into one
                    // deduplicated chain in first-demand order (the
                    // exact order the scalar shared source acquires
                    // in), then charge it once.
                    let mut seen = 0u64;
                    let mut merged: Vec<AttrId> = Vec::new();
                    for q in live.iter_mut() {
                        let off = e - q.admit;
                        let (verdict, chain) = {
                            let pre = &q.pre[mi];
                            (pre.verdicts[off], pre.chains[off].clone())
                        };
                        for &a in &chain {
                            let bit = 1u64 << a;
                            if seen & bit == 0 {
                                seen |= bit;
                                merged.push(a);
                            }
                        }
                        account_slot(
                            q,
                            &schedule[q.idx].query,
                            mote,
                            model,
                            e,
                            verdict,
                            &chain,
                            &m,
                        );
                        demanded += chain.len() as u64;
                    }
                    mote.charge_epoch(&merged, schema, model);
                    m.performed.incr(merged.len() as u64);
                    performed += merged.len() as u64;
                }
            }
            if mode == ExecMode::Scalar {
                m.performed.incr(scratch.acquired().len() as u64);
                performed += scratch.acquired().len() as u64;
            }
        }

        // 3. Completions: queries whose last live epoch was `e`.
        let (done, rest): (Vec<LiveQuery>, Vec<LiveQuery>) =
            live.into_iter().partition(|q| q.end == e + 1);
        live = rest;
        for q in done {
            complete(q, e + 1, schedule, planner, &mut outcomes, &m, &flight, start_seq);
        }
    }
    // `end` is clamped to `epochs`, so nothing should still be live
    // here; drain defensively all the same.
    for q in std::mem::take(&mut live) {
        complete(q, epochs, schedule, planner, &mut outcomes, &m, &flight, start_seq);
    }

    rec.gauge("serve.stats_epoch", planner.stats_epoch() as f64);
    let per_mote: Vec<EnergyLedger> = motes.iter().map(|mt| *mt.ledger()).collect();
    if rec.enabled() {
        for (mt, l) in motes.iter().zip(&per_mote) {
            let id = mt.id();
            rec.gauge(&format!("sensornet.mote{id}.sensing_uj"), l.sensing_uj);
            rec.gauge(&format!("sensornet.mote{id}.radio_uj"), l.radio_tx_uj + l.radio_rx_uj);
            rec.gauge(&format!("sensornet.mote{id}.total_uj"), l.total_uj());
        }
    }
    let mut network = EnergyLedger::default();
    for l in &per_mote {
        network.absorb(l);
    }
    let report = ServiceReport {
        epochs,
        queries: outcomes,
        network,
        per_mote,
        bs_tx_uj,
        performed_acquisitions: performed,
        demanded_acquisitions: demanded,
    };
    flight.emit(
        epochs as u64,
        start_seq,
        "serve.end",
        &[
            ("results", report.results().into()),
            ("all_correct", report.all_correct().into()),
            ("performed", performed.into()),
            ("demanded", demanded.into()),
        ],
    );
    drop(span);
    Ok(report)
}

/// Per-query slot accounting shared by both exec modes: tuple/result
/// counters, drift observations over the query's own acquisition
/// chain, ground-truth verification and the result uplink.
#[allow(clippy::too_many_arguments)]
fn account_slot(
    q: &mut LiveQuery,
    query: &Query,
    mote: &mut Mote,
    model: &EnergyModel,
    e: usize,
    verdict: bool,
    chain: &[AttrId],
    m: &ServeMetrics,
) {
    q.tuples += 1;
    m.tuples.incr(1);
    m.demanded.incr(chain.len() as u64);
    // Per-query drift observations use the query's own acquisition
    // chain — identical to what an independent run would observe.
    for &a in chain {
        if let Some(j) = q.pred_of[a] {
            q.pend[j].0 += 1;
            q.pend[j].1 += u64::from(query.pred(j).eval(mote.peek(e, a)));
        }
    }
    let truth = query.eval_with(|a| mote.peek(e, a));
    q.all_correct &= verdict == truth;
    if verdict {
        q.results += 1;
        m.results.incr(1);
        q.first_result.get_or_insert(e);
        mote.transmit(q.uplink_bytes, model);
        m.radio.incr(1);
    }
}

/// Finalizes one completed query: hands its drift counts to the
/// planner, records its outcome row, and emits the completion event.
#[allow(clippy::too_many_arguments)]
fn complete(
    q: LiveQuery,
    at: usize,
    schedule: &[ScheduleEntry],
    planner: &mut dyn ServePlanner,
    outcomes: &mut [QueryOutcome],
    m: &ServeMetrics,
    flight: &FlightRecorder,
    start_seq: u64,
) {
    let invalidated = planner.query_completed(&schedule[q.idx].query, at, &q.pend);
    m.completed.incr(1);
    m.invalidations.incr(invalidated);
    let latency = q.first_result.map(|f| (f - q.admit) as u64 + 1);
    if let Some(l) = latency {
        m.latency.observe(l);
    }
    let lat_field = latency.map(i64::try_from).and_then(std::result::Result::ok).unwrap_or(-1);
    flight.emit(
        at as u64,
        start_seq,
        "serve.complete",
        &[
            ("query", q.idx.into()),
            ("results", q.results.into()),
            ("latency", lat_field.into()),
            ("invalidated", invalidated.into()),
        ],
    );
    let o = &mut outcomes[q.idx];
    o.completed_at = at;
    o.tuples = q.tuples;
    o.results = q.results;
    o.all_correct = q.all_correct;
    o.cache_hit = q.cache_hit;
    o.subproblems = q.subproblems;
    o.latency_epochs = latency;
    o.invalidated = invalidated;
}

/// Vectorized-mode admission work: runs the batch executor over each
/// mote's trace window and stores per-epoch verdicts and owned
/// acquisition chains for the epoch loop to merge.
#[allow(clippy::too_many_arguments)]
fn precompute_batches(
    exec: &mut BatchExecutor,
    out: &mut BatchOutcome,
    planned: &PlannedQuery,
    query: &Query,
    schema: &Schema,
    motes: &[Mote],
    admit: usize,
    end: usize,
) -> Vec<MotePre> {
    let prepared = PreparedPlan::new(&planned.plan, query, schema, &CostModel::PerAttribute);
    motes
        .iter()
        .map(|mote| {
            let stop = end.min(mote.epochs());
            let mut verdicts = Vec::new();
            let mut chains = Vec::new();
            let mut start = admit;
            while start < stop {
                let len = BATCH_ROWS.min(stop - start);
                let batch = ColumnBatch::slice(mote.trace(), start, len);
                exec.execute_batch(&prepared, &batch, None, out);
                for slot in 0..len {
                    verdicts.push(out.verdict(slot));
                    chains.push(out.acquired(&prepared, slot).to_vec());
                }
                start += len;
            }
            MotePre { verdicts, chains }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basestation::Basestation;
    use crate::sim::{fleet_from_trace, run_simulation_mode};
    use acqp_core::{Attribute, Dataset, Pred};

    /// A minimal cache-free policy for engine tests: plans every
    /// admission from scratch via the reported sweep.
    struct PlainPlanner<'h> {
        bs: Basestation<'h>,
        alpha: f64,
    }

    impl ServePlanner for PlainPlanner<'_> {
        fn plan_admitted(&mut self, query: &Query, _epoch: usize) -> Result<AdmittedPlan> {
            let (_, planned, subproblems) =
                self.bs.plan_query_sized_reported(query, self.alpha, &[0, 1, 2, 4])?;
            Ok(AdmittedPlan { planned, cache_hit: false, subproblems })
        }

        fn query_completed(&mut self, _: &Query, _: usize, _: &[(u64, u64)]) -> u64 {
            0
        }

        fn stats_epoch(&self) -> u64 {
            0
        }
    }

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 100.0),
            Attribute::new("b", 2, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..240u16 {
            let t = i % 2;
            let a = if i % 10 == 0 { 1 - t } else { t };
            let b = if i % 12 == 0 { t } else { 1 - t };
            rows.push(vec![a, b, t]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn single_query_service_matches_engine_bitwise() {
        let (schema, data, query) = setup();
        let bs = Basestation::new(schema.clone(), &data);
        let model = EnergyModel::mica_like();
        let epochs = 64usize;
        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            // Reference: the single-query engine.
            let planned = bs.plan_query_sized(&query, 0.01, &[0, 1, 2, 4]).unwrap().1;
            let mut ref_fleet = fleet_from_trace(&data, 3);
            let sim = run_simulation_mode(
                &schema,
                &query,
                &planned,
                &mut ref_fleet,
                &model,
                epochs,
                mode,
                &Recorder::disabled(),
            );

            // The service with one scheduled query covering the run.
            let mut planner =
                PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
            let mut fleet = fleet_from_trace(&data, 3);
            let schedule = [ScheduleEntry { query: query.clone(), admit: 0, window: epochs }];
            let rep = run_service(
                &schema,
                &schedule,
                &mut planner,
                &mut fleet,
                &model,
                epochs,
                mode,
                &Recorder::disabled(),
            )
            .unwrap();

            assert_eq!(rep.tuples(), sim.tuples);
            assert_eq!(rep.results(), sim.results);
            assert!(rep.all_correct() && sim.all_correct);
            assert_eq!(rep.per_mote.len(), sim.per_mote.len());
            for (a, b) in rep.per_mote.iter().zip(&sim.per_mote) {
                assert_eq!(a.sensing_uj.to_bits(), b.sensing_uj.to_bits());
                assert_eq!(a.board_uj.to_bits(), b.board_uj.to_bits());
                assert_eq!(a.radio_tx_uj.to_bits(), b.radio_tx_uj.to_bits());
                assert_eq!(a.radio_rx_uj.to_bits(), b.radio_rx_uj.to_bits());
            }
            assert_eq!(rep.network.total_uj().to_bits(), sim.network.total_uj().to_bits());
            // With one query nothing can be shared.
            assert_eq!(rep.performed_acquisitions, rep.demanded_acquisitions);
        }
    }

    #[test]
    fn overlapping_queries_share_acquisitions() {
        let (schema, data, query) = setup();
        let q2 = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(2, 0, 0)]).unwrap();
        let model = EnergyModel::mica_like();
        let epochs = 48usize;
        let schedule = [
            ScheduleEntry { query: query.clone(), admit: 0, window: epochs },
            ScheduleEntry { query: q2.clone(), admit: 0, window: epochs },
        ];

        let mut planner = PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
        let mut fleet = fleet_from_trace(&data, 2);
        let shared = run_service(
            &schema,
            &schedule,
            &mut planner,
            &mut fleet,
            &model,
            epochs,
            ExecMode::Scalar,
            &Recorder::disabled(),
        )
        .unwrap();
        assert!(shared.performed_acquisitions < shared.demanded_acquisitions);

        // N-independent-runs baseline: each query on its own fleet.
        let mut independent = 0.0;
        for entry in &schedule {
            let bs = Basestation::new(schema.clone(), &data);
            let planned = bs.plan_query_sized(&entry.query, 0.01, &[0, 1, 2, 4]).unwrap().1;
            let mut f = fleet_from_trace(&data, 2);
            let sim = run_simulation_mode(
                &schema,
                &entry.query,
                &planned,
                &mut f,
                &model,
                epochs,
                ExecMode::Scalar,
                &Recorder::disabled(),
            );
            independent += sim.network.total_uj();
        }
        assert!(
            shared.network.total_uj() < independent,
            "shared {} !< independent {independent}",
            shared.network.total_uj()
        );
        // Both queries ran to completion with correct verdicts.
        assert!(shared.all_correct());
        assert_eq!(shared.queries.len(), 2);
        assert!(shared.queries.iter().all(|q| q.admitted && q.tuples == 2 * epochs));
    }

    #[test]
    fn scalar_and_vectorized_service_agree_bitwise() {
        let (schema, data, query) = setup();
        let q2 = Query::new(vec![Pred::in_range(1, 1, 1), Pred::in_range(2, 1, 1)]).unwrap();
        let model = EnergyModel::mica_like();
        let epochs = 40usize;
        let schedule = [
            ScheduleEntry { query, admit: 0, window: 30 },
            ScheduleEntry { query: q2, admit: 8, window: 40 },
        ];
        let mut reports = Vec::new();
        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            let mut planner =
                PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.01 };
            let mut fleet = fleet_from_trace(&data, 2);
            reports.push(
                run_service(
                    &schema,
                    &schedule,
                    &mut planner,
                    &mut fleet,
                    &model,
                    epochs,
                    mode,
                    &Recorder::disabled(),
                )
                .unwrap(),
            );
        }
        let (s, v) = (&reports[0], &reports[1]);
        assert_eq!(s.performed_acquisitions, v.performed_acquisitions);
        assert_eq!(s.demanded_acquisitions, v.demanded_acquisitions);
        for (a, b) in s.per_mote.iter().zip(&v.per_mote) {
            assert_eq!(a.sensing_uj.to_bits(), b.sensing_uj.to_bits());
            assert_eq!(a.board_uj.to_bits(), b.board_uj.to_bits());
            assert_eq!(a.radio_tx_uj.to_bits(), b.radio_tx_uj.to_bits());
            assert_eq!(a.radio_rx_uj.to_bits(), b.radio_rx_uj.to_bits());
        }
        for (a, b) in s.queries.iter().zip(&v.queries) {
            assert_eq!(a.tuples, b.tuples);
            assert_eq!(a.results, b.results);
            assert_eq!(a.latency_epochs, b.latency_epochs);
            assert!(a.all_correct && b.all_correct);
        }
    }

    #[test]
    fn schedule_edges_are_handled() {
        let (schema, data, query) = setup();
        let model = EnergyModel::mica_like();
        let schedule = [
            // Zero window is clamped to one epoch.
            ScheduleEntry { query: query.clone(), admit: 2, window: 0 },
            // Admission beyond the run: never admitted.
            ScheduleEntry { query: query.clone(), admit: 100, window: 5 },
        ];
        let mut planner = PlainPlanner { bs: Basestation::new(schema.clone(), &data), alpha: 0.0 };
        let mut fleet = fleet_from_trace(&data, 2);
        let rep = run_service(
            &schema,
            &schedule,
            &mut planner,
            &mut fleet,
            &model,
            10,
            ExecMode::Scalar,
            &Recorder::disabled(),
        )
        .unwrap();
        assert!(rep.queries[0].admitted);
        assert_eq!(rep.queries[0].tuples, 2);
        assert_eq!(rep.queries[0].completed_at, 3);
        assert!(!rep.queries[1].admitted);
        assert_eq!(rep.queries[1].tuples, 0);

        // A zero-epoch run admits nothing and spends nothing.
        let mut fleet = fleet_from_trace(&data, 2);
        let rep = run_service(
            &schema,
            &schedule,
            &mut planner,
            &mut fleet,
            &model,
            0,
            ExecMode::Scalar,
            &Recorder::disabled(),
        )
        .unwrap();
        assert!(rep.queries.iter().all(|q| !q.admitted));
        assert_eq!(rep.network.total_uj(), 0.0);
    }
}
