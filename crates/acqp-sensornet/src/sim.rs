//! The epoch-loop simulation: dissemination, per-epoch plan execution on
//! every mote, result reporting, network-wide energy accounting — with
//! optional fault injection ([`run_simulation_faulty`]) and
//! drift-triggered re-planning ([`run_simulation_adaptive`]).
//!
//! All entry points share one engine; the lossless [`run_simulation`]
//! simply runs it with [`FaultModel::none`], so a faulty run with a
//! zero loss rate is *bit-identical* to the lossless simulator by
//! construction (at zero loss the first attempt of every packet
//! succeeds and no extra energy is charged).

use acqp_core::drift::DriftMonitor;
use acqp_core::{Dataset, DriftConfig, Query, Schema, TupleSource};
use acqp_obs::Recorder;
use acqp_stream::SlidingWindow;

use crate::basestation::{Basestation, PlannedQuery, ReplanBudget};
use crate::energy::{EnergyLedger, EnergyModel};
use crate::fault::{attempt_packet, FaultModel, FaultStats, FaultStream, FaultySource};
use crate::interp::execute_wire;
use crate::mote::Mote;

/// Result of simulating one planned query over a fleet of motes.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Epochs executed.
    pub epochs: usize,
    /// Tuples evaluated (mote-epochs that actually executed a plan).
    pub tuples: usize,
    /// Tuples that satisfied the query (the mote transmitted a result,
    /// delivered or not).
    pub results: usize,
    /// Whether every verdict matched ground truth.
    pub all_correct: bool,
    /// Aggregate energy over all motes.
    pub network: EnergyLedger,
    /// Per-mote energy ledgers.
    pub per_mote: Vec<EnergyLedger>,
    /// Mean per-tuple sensing energy (µJ) — the quantity conditional
    /// plans minimize. `0.0` when no tuple was evaluated (zero epochs
    /// or an empty fleet), never `NaN`.
    pub sensing_uj_per_tuple: f64,
}

impl SimReport {
    /// Assembles a report, computing the network aggregate and the
    /// per-tuple sensing mean with the degenerate cases (`epochs == 0`,
    /// empty fleet) pinned to `0.0` instead of `NaN`.
    fn assemble(
        epochs: usize,
        tuples: usize,
        results: usize,
        all_correct: bool,
        per_mote: Vec<EnergyLedger>,
    ) -> SimReport {
        let mut network = EnergyLedger::default();
        for l in &per_mote {
            network.absorb(l);
        }
        let sensing_uj_per_tuple =
            if tuples > 0 { network.sensing_uj / tuples as f64 } else { 0.0 };
        SimReport { epochs, tuples, results, all_correct, network, per_mote, sensing_uj_per_tuple }
    }
}

/// On-air width of one attribute value: one byte for domains that fit,
/// two otherwise.
fn attr_width(domain: u16) -> usize {
    if domain as u32 <= 256 {
        1
    } else {
        2
    }
}

/// Size of one reported result packet: a two-byte header (mote id +
/// sequence) plus the values of the attributes the query selects, each
/// at its domain's width. Replaces the old fixed 8-byte packet, which
/// mischarged radio energy for narrow and wide queries alike.
pub fn result_packet_bytes(schema: &Schema, query: &Query) -> usize {
    2 + query.attrs().iter().map(|&a| attr_width(schema.domain(a))).sum::<usize>()
}

/// Size of one statistics-sample packet: header, every attribute of the
/// schema at its width, plus two bytes per predicate of piggybacked
/// evaluated/passed counter deltas.
pub fn sample_packet_bytes(schema: &Schema, query: &Query) -> usize {
    2 + schema.attrs().iter().map(|a| attr_width(a.domain())).sum::<usize>() + 2 * query.len()
}

/// One drift-triggered re-planning decision during an adaptive run.
#[derive(Debug, Clone)]
pub struct ReplanEvent {
    /// Epoch at whose end the check fired.
    pub epoch: usize,
    /// The monitor's max per-predicate divergence at that point.
    pub divergence: f64,
    /// Whether the candidate plan was adopted and re-disseminated.
    pub adopted: bool,
    /// Whether the budgeted exhaustive search truncated.
    pub truncated: bool,
    /// Whether the candidate came from the `GreedySeq` fallback.
    pub fell_back: bool,
    /// Expected cost of continuing the stale plan under the window.
    pub stale_cost: f64,
    /// Expected cost of the candidate under the window.
    pub new_cost: f64,
}

/// A [`SimReport`] extended with fault-path accounting.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The core simulation report.
    pub sim: SimReport,
    /// Passing tuples whose result packet reached the basestation.
    pub delivered_results: usize,
    /// Passing tuples whose result packet timed out (all attempts lost).
    pub lost_results: usize,
    /// Tuples abandoned because a sensor read failed past the cap.
    pub aborted_tuples: usize,
    /// Mote-epochs lost to dropout schedules.
    pub offline_epochs: usize,
    /// Mote-epochs skipped because the mote never received any plan.
    pub undisseminated_epochs: usize,
    /// Statistics samples that reached the basestation (adaptive runs).
    pub samples_delivered: usize,
    /// Basestation transmit energy spent on (re-)dissemination.
    pub bs_tx_uj: f64,
    /// Drift checks that ran a re-plan (adaptive runs only).
    pub replans: Vec<ReplanEvent>,
}

impl FaultReport {
    /// Fraction of passing tuples whose results actually arrived
    /// (`1.0` when nothing passed — nothing was lost).
    pub fn delivery_rate(&self) -> f64 {
        if self.sim.results > 0 {
            self.delivered_results as f64 / self.sim.results as f64
        } else {
            1.0
        }
    }
}

/// Knobs for the adaptive (drift-triggered re-planning) loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Divergence threshold / sample gating (see [`DriftConfig`]).
    pub drift: DriftConfig,
    /// Epochs between drift checks at the basestation.
    pub check_every: usize,
    /// Every `sample_every` epochs each mote uploads one full tuple for
    /// the statistics window (paying sensing + radio for it).
    pub sample_every: usize,
    /// Sliding-window capacity (tuples) behind the re-plan estimator.
    pub window: usize,
    /// Minimum window fill before a re-plan is attempted.
    pub min_window: usize,
    /// Planning budget for each re-plan.
    pub budget: ReplanBudget,
    /// §2.4 plan-size penalty applied to re-planned candidates.
    pub alpha: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            drift: DriftConfig::default(),
            check_every: 8,
            sample_every: 4,
            window: 256,
            min_window: 32,
            budget: ReplanBudget::default(),
            alpha: 0.0,
        }
    }
}

/// Runs `planned` for `epochs` epochs on the given motes, losslessly.
///
/// Each mote receives the plan (radio rx), executes its wire encoding
/// once per epoch against its own trace (sensing + board energy), and
/// transmits a result packet for every passing tuple.
pub fn run_simulation(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
) -> SimReport {
    run_simulation_recorded(schema, query, planned, motes, model, epochs, &Recorder::disabled())
}

/// Like [`run_simulation`], recording `sensornet.*` metrics: tuple /
/// result / radio-message counters, a per-epoch acquisition histogram,
/// and per-mote energy gauges (see `DESIGN.md` §8).
pub fn run_simulation_recorded(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    rec: &Recorder,
) -> SimReport {
    run_engine(schema, query, planned, motes, model, epochs, &FaultModel::none(), None, rec).sim
}

/// Runs the simulation under a [`FaultModel`]: lossy dissemination and
/// result reporting with bounded retry + exponential backoff, sensing
/// failures, and mote dropouts — every retransmission charged to the
/// energy ledgers and counted under `sensornet.fault.*`.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_faulty(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    faults: &FaultModel,
    rec: &Recorder,
) -> FaultReport {
    run_engine(schema, query, planned, motes, model, epochs, faults, None, rec)
}

/// Like [`run_simulation_faulty`] plus the basestation control loop:
/// motes piggyback per-predicate evaluated/passed counters on their
/// uplinks and periodically upload full statistics samples; the
/// basestation's [`DriftMonitor`] compares actual selectivities against
/// the plan's estimates, and when divergence crosses the threshold it
/// re-plans under the planning budget (falling back to `GreedySeq` on
/// truncation), adopting and re-disseminating the candidate only if it
/// beats the stale plan under the drifted window.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_adaptive(
    bs: &Basestation<'_>,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    faults: &FaultModel,
    cfg: &AdaptiveConfig,
    rec: &Recorder,
) -> acqp_core::Result<FaultReport> {
    let monitor = DriftMonitor::new(bs.estimated_selectivities(query), cfg.drift)?;
    let state = AdaptiveState {
        bs,
        cfg,
        monitor,
        window: SlidingWindow::new(bs.schema(), cfg.window.max(1)),
        pend_eval: vec![vec![0; query.len()]; motes.len()],
        pend_pass: vec![vec![0; query.len()]; motes.len()],
    };
    Ok(run_engine(bs.schema(), query, planned, motes, model, epochs, faults, Some(state), rec))
}

struct AdaptiveState<'a> {
    bs: &'a Basestation<'a>,
    cfg: &'a AdaptiveConfig,
    monitor: DriftMonitor,
    window: SlidingWindow,
    /// Per-mote per-predicate counter deltas not yet flushed to the
    /// basestation (they ride on the next *delivered* uplink).
    pend_eval: Vec<Vec<u64>>,
    pend_pass: Vec<Vec<u64>>,
}

impl AdaptiveState<'_> {
    /// Flushes mote `i`'s pending predicate counters into the monitor —
    /// called only when an uplink from `i` was actually delivered.
    fn flush_counters(&mut self, i: usize) {
        for j in 0..self.pend_eval[i].len() {
            let (e, p) = (self.pend_eval[i][j], self.pend_pass[i][j]);
            if e > 0 {
                self.monitor.observe_counts(j, e, p);
                self.pend_eval[i][j] = 0;
                self.pend_pass[i][j] = 0;
            }
        }
    }
}

/// The shared engine behind every simulation entry point.
#[allow(clippy::too_many_arguments)]
fn run_engine(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    faults: &FaultModel,
    mut adaptive: Option<AdaptiveState<'_>>,
    rec: &Recorder,
) -> FaultReport {
    let span = rec.span("sensornet.simulate");
    let tuples_c = rec.counter("sensornet.tuples");
    let results_c = rec.counter("sensornet.results");
    let radio_c = rec.counter("sensornet.radio.msgs");
    let acq_hist = rec.hist("sensornet.acquisitions_per_tuple");
    let replan_trig_c = rec.counter("sensornet.replan.triggered");
    let replan_adopt_c = rec.counter("sensornet.replan.adopted");
    let stats = FaultStats::new(rec);

    let result_bytes = result_packet_bytes(schema, query);
    let sample_bytes = sample_packet_bytes(schema, query);
    // Piggybacked counter deltas ride on result packets only when the
    // adaptive loop is on (the plain simulators don't collect stats).
    let uplink_bytes = result_bytes + if adaptive.is_some() { 2 * query.len() } else { 0 };
    // pred_of[a] = index of the predicate on attribute `a`, if any.
    let mut pred_of: Vec<Option<usize>> = vec![None; schema.len()];
    for (j, &a) in query.attrs().iter().enumerate() {
        pred_of[a] = Some(j);
    }

    // Plan versions: motes can lag behind the basestation's current
    // plan when re-dissemination packets are lost. Any version still
    // answers the query correctly — staleness costs energy, not
    // soundness.
    let mut plans: Vec<PlannedQuery> = vec![planned.clone()];
    let mut cur = 0usize;
    let mut mote_ver: Vec<Option<usize>> = vec![None; motes.len()];

    let mut delivered_results = 0usize;
    let mut lost_results = 0usize;
    let mut aborted_tuples = 0usize;
    let mut offline_epochs = 0usize;
    let mut undisseminated_epochs = 0usize;
    let mut samples_delivered = 0usize;
    let mut bs_tx_uj = 0.0f64;
    let mut replans: Vec<ReplanEvent> = Vec::new();

    // Initial dissemination round (epoch 0 on the fault clock). Runs
    // even for a zero-epoch simulation, exactly like the pre-fault
    // simulator.
    for (i, m) in motes.iter_mut().enumerate() {
        if !faults.online(m.id(), 0) {
            continue;
        }
        let d = attempt_packet(faults, FaultStream::Dissemination, m.id(), 0, &stats);
        bs_tx_uj +=
            (d.attempts as usize * plans[cur].wire.len()) as f64 * model.radio_tx_uj_per_byte;
        radio_c.incr(d.attempts as u64);
        if d.delivered {
            m.receive(plans[cur].wire.len(), model);
            mote_ver[i] = Some(cur);
        }
    }

    let mut results = 0usize;
    let mut tuples = 0usize;
    let mut all_correct = true;
    for e in 0..epochs {
        // Re-dissemination: any mote lagging the current plan gets a
        // fresh per-epoch attempt window (the initial round already
        // consumed epoch 0's).
        if e > 0 {
            for (i, m) in motes.iter_mut().enumerate() {
                if mote_ver[i] == Some(cur) || !faults.online(m.id(), e) {
                    continue;
                }
                let d = attempt_packet(faults, FaultStream::Dissemination, m.id(), e, &stats);
                bs_tx_uj += (d.attempts as usize * plans[cur].wire.len()) as f64
                    * model.radio_tx_uj_per_byte;
                radio_c.incr(d.attempts as u64);
                if d.delivered {
                    m.receive(plans[cur].wire.len(), model);
                    mote_ver[i] = Some(cur);
                }
            }
        }

        for (i, m) in motes.iter_mut().enumerate() {
            if e >= m.epochs() {
                continue;
            }
            let id = m.id();
            if !faults.online(id, e) {
                stats.offline_epochs.incr(1);
                offline_epochs += 1;
                continue;
            }
            let Some(ver) = mote_ver[i] else {
                undisseminated_epochs += 1;
                continue;
            };
            tuples += 1;
            tuples_c.incr(1);
            let wire = &plans[ver].wire;
            let (out, aborted) = {
                let src = m.epoch_source(e, schema, model);
                let mut fsrc = FaultySource::new(src, faults, &stats, id, e);
                let out = execute_wire(wire, query, schema, &mut fsrc)
                    .expect("basestation-produced wire plans are well-formed");
                (out, fsrc.aborted())
            };
            acq_hist.observe(out.acquired.len() as u64);
            if aborted {
                aborted_tuples += 1;
                continue;
            }
            let truth = query.eval_with(|a| m.peek(e, a));
            all_correct &= out.verdict == truth;

            // Every acquired attribute with a predicate yields one
            // evaluated/held observation for the drift monitor,
            // buffered until an uplink actually gets through.
            if let Some(st) = adaptive.as_mut() {
                for &a in &out.acquired {
                    if let Some(j) = pred_of[a] {
                        st.pend_eval[i][j] += 1;
                        st.pend_pass[i][j] += u64::from(query.pred(j).eval(m.peek(e, a)));
                    }
                }
            }

            if out.verdict {
                results += 1;
                results_c.incr(1);
                let d = attempt_packet(faults, FaultStream::Result, id, e, &stats);
                m.transmit(d.attempts as usize * uplink_bytes, model);
                radio_c.incr(d.attempts as u64);
                if d.delivered {
                    delivered_results += 1;
                    if let Some(st) = adaptive.as_mut() {
                        st.flush_counters(i);
                    }
                } else {
                    lost_results += 1;
                }
            }

            // Periodic statistics sample: read out the rest of the
            // tuple (sensing honestly charged via the same source
            // rules) and upload the full row for the re-plan window.
            if let Some(st) = adaptive.as_mut() {
                let k = st.cfg.sample_every.max(1);
                if e % k == k - 1 {
                    let mut sample_aborted = false;
                    {
                        let src = m.epoch_source(e, schema, model);
                        let mut fsrc = FaultySource::new(src, faults, &stats, id, e);
                        for a in 0..schema.len() {
                            if !out.acquired.contains(&a) {
                                fsrc.acquire(a);
                                if fsrc.aborted() {
                                    sample_aborted = true;
                                    break;
                                }
                            }
                        }
                    }
                    if !sample_aborted {
                        let d = attempt_packet(faults, FaultStream::Sample, id, e, &stats);
                        m.transmit(d.attempts as usize * sample_bytes, model);
                        radio_c.incr(d.attempts as u64);
                        if d.delivered {
                            samples_delivered += 1;
                            let row: Vec<u16> = (0..schema.len()).map(|a| m.peek(e, a)).collect();
                            st.window.push(row);
                            st.flush_counters(i);
                        }
                    }
                }
            }
        }

        // Basestation drift check at epoch end.
        if let Some(st) = adaptive.as_mut() {
            let k = st.cfg.check_every.max(1);
            if (e + 1) % k == 0
                && st.monitor.drifted()
                && st.window.len() >= st.cfg.min_window.max(1)
            {
                replan_trig_c.incr(1);
                let divergence = st.monitor.max_divergence();
                let window =
                    st.window.snapshot(schema).expect("window rows come from schema-shaped traces");
                let outcome = st
                    .bs
                    .replan(query, &window, &st.cfg.budget, st.cfg.alpha, &plans[cur])
                    .expect("re-planning a valid query cannot fail");
                replans.push(ReplanEvent {
                    epoch: e,
                    divergence,
                    adopted: outcome.adopted,
                    truncated: outcome.truncated,
                    fell_back: outcome.fell_back,
                    stale_cost: outcome.stale_cost,
                    new_cost: outcome.new_cost,
                });
                // Either way the monitor is re-armed with the window's
                // estimates — they are the basestation's current belief.
                st.monitor.reset(outcome.est_selectivities.clone());
                if outcome.adopted {
                    replan_adopt_c.incr(1);
                    plans.push(outcome.planned);
                    cur = plans.len() - 1;
                    // Every mote now lags; re-dissemination starts at
                    // the top of the next epoch.
                }
            }
        }
    }

    let per_mote: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    if rec.enabled() {
        for (m, l) in motes.iter().zip(&per_mote) {
            let id = m.id();
            rec.gauge(&format!("sensornet.mote{id}.sensing_uj"), l.sensing_uj);
            rec.gauge(&format!("sensornet.mote{id}.radio_uj"), l.radio_tx_uj + l.radio_rx_uj);
            rec.gauge(&format!("sensornet.mote{id}.total_uj"), l.total_uj());
        }
    }
    drop(span);
    FaultReport {
        sim: SimReport::assemble(epochs, tuples, results, all_correct, per_mote),
        delivered_results,
        lost_results,
        aborted_tuples,
        offline_epochs,
        undisseminated_epochs,
        samples_delivered,
        bs_tx_uj,
        replans,
    }
}

/// Splits a flat multi-mote trace (one row per epoch, whole-network
/// schema — the Garden layout) into per-mote traces is not needed: in
/// the Garden model every mote evaluates the *network-wide* tuple, so
/// each "mote" is handed the same epoch rows. This helper instead builds
/// a fleet of `n` motes that all observe the given trace.
pub fn fleet_from_trace(trace: &Dataset, n: u16) -> Vec<Mote> {
    (0..n).map(|id| Mote::new(id, trace.clone())).collect()
}

/// Like [`run_simulation`] but over a multihop collection tree:
/// dissemination floods down the tree (interior motes forward the plan)
/// and every result climbs hop by hop, charging each ancestor a relay.
/// Returns the report plus the basestation's own transmit energy.
pub fn run_simulation_multihop(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    topo: &crate::topology::Topology,
    model: &EnergyModel,
    epochs: usize,
) -> (SimReport, f64) {
    assert_eq!(motes.len(), topo.len());
    let result_bytes = result_packet_bytes(schema, query);
    // Dissemination down the tree.
    let mut ledgers: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    let bs_tx = topo.charge_dissemination(planned.wire.len(), model, &mut ledgers);

    let mut results = 0usize;
    let mut tuples = 0usize;
    let mut all_correct = true;
    for e in 0..epochs {
        for (mi, m) in motes.iter_mut().enumerate() {
            if e >= m.epochs() {
                continue;
            }
            tuples += 1;
            let out = {
                let mut src = m.epoch_source(e, schema, model);
                execute_wire(&planned.wire, query, schema, &mut src)
                    .expect("basestation-produced wire plans are well-formed")
            };
            let truth = query.eval_with(|a| m.peek(e, a));
            all_correct &= out.verdict == truth;
            if out.verdict {
                results += 1;
                topo.charge_result(mi, result_bytes, model, &mut ledgers);
            }
        }
    }
    // Merge sensing/board energy (tracked inside each mote) with the
    // radio energy tracked by the topology layer.
    for (m, topo_ledger) in motes.iter_mut().zip(&ledgers) {
        let l = m.ledger_mut();
        l.radio_rx_uj = topo_ledger.radio_rx_uj;
        l.radio_tx_uj = topo_ledger.radio_tx_uj;
    }
    let per_mote: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    let report = SimReport::assemble(epochs, tuples, results, all_correct, per_mote);
    (report, bs_tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basestation::{Basestation, PlannerChoice};
    use acqp_core::{Attribute, Pred};

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 100.0),
            Attribute::new("b", 2, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..400u16 {
            let t = i % 2;
            let a = if i % 10 == 0 { 1 - t } else { t };
            let b = if i % 12 == 0 { t } else { 1 - t };
            rows.push(vec![a, b, t]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn simulation_accounts_and_validates() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();

        let mut motes = fleet_from_trace(&live, 3);
        let report = run_simulation(
            &schema,
            &query,
            &planned,
            &mut motes,
            &EnergyModel::mica_like(),
            live.len(),
        );
        assert!(report.all_correct);
        assert_eq!(report.tuples, 3 * live.len());
        // Dissemination was charged to every mote.
        assert!(report.network.radio_rx_uj > 0.0);
        assert_eq!(report.per_mote.len(), 3);
        // Sensing energy per tuple sits between the single- and
        // two-sensor cost.
        assert!(report.sensing_uj_per_tuple >= 1.0);
        assert!(report.sensing_uj_per_tuple <= 201.0);
    }

    #[test]
    fn recorded_simulation_reports_network_metrics() {
        use acqp_obs::{NoopSink, Recorder};
        use std::sync::Arc;

        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let mut motes = fleet_from_trace(&live, 2);
        let rec = Recorder::new(Arc::new(NoopSink));
        let report = run_simulation_recorded(
            &schema,
            &query,
            &planned,
            &mut motes,
            &EnergyModel::mica_like(),
            live.len(),
            &rec,
        );
        let snap = rec.drain();
        assert_eq!(snap.counter("sensornet.tuples"), report.tuples as u64);
        assert_eq!(snap.counter("sensornet.results"), report.results as u64);
        // Radio messages = one dissemination rx per mote + one tx per result.
        assert_eq!(snap.counter("sensornet.radio.msgs"), 2 + report.results as u64);
        assert_eq!(snap.hists["sensornet.acquisitions_per_tuple"].1, report.tuples as u64);
        for (m, l) in motes.iter().zip(&report.per_mote) {
            let g = snap.value(&format!("sensornet.mote{}.total_uj", m.id()));
            assert!((g - l.total_uj()).abs() < 1e-9);
        }
        assert_eq!(snap.spans["sensornet.simulate"].count, 1);
        // The lossless path never touches the fault taxonomy beyond
        // first-attempt successes.
        assert_eq!(snap.counter("sensornet.fault.result.lost"), 0);
        assert_eq!(snap.counter("sensornet.fault.diss.timeouts"), 0);
    }

    #[test]
    fn conditional_plan_saves_network_energy_vs_naive() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let model = EnergyModel::mica_like();

        let run = |choice: PlannerChoice| {
            let planned = bs.plan_query(&query, choice, 0.0).unwrap();
            let mut motes = fleet_from_trace(&live, 2);
            run_simulation(&schema, &query, &planned, &mut motes, &model, live.len())
        };
        let naive = run(PlannerChoice::Naive);
        let cond = run(PlannerChoice::Heuristic(4));
        assert!(naive.all_correct && cond.all_correct);
        assert!(
            cond.network.sensing_uj < naive.network.sensing_uj,
            "conditional {} vs naive {}",
            cond.network.sensing_uj,
            naive.network.sensing_uj
        );
    }

    #[test]
    fn board_powerup_charged_in_simulation() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let model = EnergyModel::mica_like().with_board(vec![0, 1], 300.0);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let mut motes = fleet_from_trace(&live, 1);
        let report = run_simulation(&schema, &query, &planned, &mut motes, &model, live.len());
        assert!(report.network.board_uj > 0.0);
        // At most one power-up per tuple.
        assert!(report.network.board_uj <= 300.0 * report.tuples as f64);
    }

    #[test]
    fn result_packet_scales_with_selected_attribute_widths() {
        let (schema, _, query) = setup();
        // Two selected attributes with 2-value domains: 2-byte header +
        // 1 byte each.
        assert_eq!(result_packet_bytes(&schema, &query), 4);
        // A wide-domain attribute costs two bytes on air.
        let wide = Schema::new(vec![Attribute::new("w", 1000, 10.0), Attribute::new("n", 4, 10.0)])
            .unwrap();
        let q1 = Query::new(vec![Pred::in_range(0, 0, 500)]).unwrap();
        assert_eq!(result_packet_bytes(&wide, &q1), 2 + 2);
        let q2 = Query::new(vec![Pred::in_range(0, 0, 500), Pred::in_range(1, 0, 1)]).unwrap();
        assert_eq!(result_packet_bytes(&wide, &q2), 2 + 2 + 1);
        // Sample packets carry the whole schema plus counter deltas.
        assert_eq!(sample_packet_bytes(&wide, &q2), 2 + 3 + 2 * 2);
    }

    #[test]
    fn result_radio_energy_uses_computed_packet_size() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let model = EnergyModel::mica_like();
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let mut motes = fleet_from_trace(&live, 1);
        let report = run_simulation(&schema, &query, &planned, &mut motes, &model, live.len());
        let expected_tx = report.results as f64
            * result_packet_bytes(&schema, &query) as f64
            * model.radio_tx_uj_per_byte;
        assert!(report.results > 0);
        assert!((report.network.radio_tx_uj - expected_tx).abs() < 1e-9);
    }

    #[test]
    fn degenerate_configs_report_zero_not_nan() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let model = EnergyModel::mica_like();

        // Zero epochs: dissemination still happens, no tuples run.
        let mut motes = fleet_from_trace(&live, 2);
        let r = run_simulation(&schema, &query, &planned, &mut motes, &model, 0);
        assert_eq!(r.tuples, 0);
        assert_eq!(r.sensing_uj_per_tuple, 0.0);
        assert!(r.sensing_uj_per_tuple.is_finite());
        assert!(r.network.radio_rx_uj > 0.0, "plan was still disseminated");

        // Empty fleet: nothing at all.
        let mut none: Vec<Mote> = Vec::new();
        let r = run_simulation(&schema, &query, &planned, &mut none, &model, 50);
        assert_eq!(r.tuples, 0);
        assert_eq!(r.sensing_uj_per_tuple, 0.0);
        assert!(r.sensing_uj_per_tuple.is_finite());

        // Same edges through the multihop path.
        let topo = crate::topology::Topology::star(2);
        let mut motes = fleet_from_trace(&live, 2);
        let (r, _) =
            run_simulation_multihop(&schema, &query, &planned, &mut motes, &topo, &model, 0);
        assert_eq!(r.sensing_uj_per_tuple, 0.0);
        assert!(r.sensing_uj_per_tuple.is_finite());
    }

    #[test]
    fn zero_loss_faulty_run_is_bitwise_identical_to_lossless() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like();

        let mut base_motes = fleet_from_trace(&live, 3);
        let base = run_simulation(&schema, &query, &planned, &mut base_motes, &model, live.len());

        let mut faulty_motes = fleet_from_trace(&live, 3);
        let faults = FaultModel::lossy(0xDEAD_BEEF, 0.0);
        let rep = run_simulation_faulty(
            &schema,
            &query,
            &planned,
            &mut faulty_motes,
            &model,
            live.len(),
            &faults,
            &Recorder::disabled(),
        );
        assert_eq!(rep.sim.tuples, base.tuples);
        assert_eq!(rep.sim.results, base.results);
        assert_eq!(rep.sim.all_correct, base.all_correct);
        assert_eq!(rep.sim.per_mote, base.per_mote, "energy must match to the bit");
        assert_eq!(rep.sim.sensing_uj_per_tuple.to_bits(), base.sensing_uj_per_tuple.to_bits());
        assert_eq!(rep.delivered_results, rep.sim.results);
        assert_eq!(rep.lost_results, 0);
        assert_eq!(rep.delivery_rate(), 1.0);
    }

    #[test]
    fn lossy_run_is_deterministic_and_loses_results() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let faults = FaultModel::lossy(7, 0.4);

        let run = || {
            let mut motes = fleet_from_trace(&live, 3);
            run_simulation_faulty(
                &schema,
                &query,
                &planned,
                &mut motes,
                &model,
                live.len(),
                &faults,
                &Recorder::disabled(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.sim.per_mote, b.sim.per_mote);
        assert_eq!(a.delivered_results, b.delivered_results);
        assert_eq!(a.lost_results, b.lost_results);
        assert!(a.lost_results > 0, "40% loss with 4 attempts must lose something");
        assert!(a.delivery_rate() < 1.0);
        // Retransmissions cost strictly more tx energy than a lossless
        // run of the same plan.
        let mut lossless = fleet_from_trace(&live, 3);
        let base = run_simulation(&schema, &query, &planned, &mut lossless, &model, live.len());
        assert!(a.sim.network.radio_tx_uj > base.network.radio_tx_uj);
    }

    #[test]
    fn dropout_epochs_do_not_execute_or_charge() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let epochs = live.len();
        // Mote 1 is down for 10 epochs mid-run.
        let faults = FaultModel::lossy(3, 0.0).with_dropout(1, 20, 30);
        let mut motes = fleet_from_trace(&live, 2);
        let rep = run_simulation_faulty(
            &schema,
            &query,
            &planned,
            &mut motes,
            &model,
            epochs,
            &faults,
            &Recorder::disabled(),
        );
        assert_eq!(rep.offline_epochs, 10);
        assert_eq!(rep.sim.tuples, 2 * epochs - 10);
        assert!(rep.sim.all_correct);
        // The dropped mote spent strictly less sensing energy.
        assert!(rep.sim.per_mote[1].sensing_uj < rep.sim.per_mote[0].sensing_uj);
    }

    #[test]
    fn sensing_failures_abort_tuples_but_charge_retries() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let faults = FaultModel::lossy(11, 0.0).with_sensing_failures(0.2).with_max_attempts(2);
        let mut motes = fleet_from_trace(&live, 2);
        let rep = run_simulation_faulty(
            &schema,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            &faults,
            &Recorder::disabled(),
        );
        assert!(rep.aborted_tuples > 0, "20% failure with cap 2 must abort some tuples");
        // Verdict checking skips aborted tuples, so the run stays correct.
        assert!(rep.sim.all_correct);
        // Failed reads still drew sensor power: more sensing energy
        // than the lossless run.
        let mut lossless = fleet_from_trace(&live, 2);
        let base = run_simulation(&schema, &query, &planned, &mut lossless, &model, live.len());
        assert!(rep.sim.network.sensing_uj > base.network.sensing_uj);
    }

    #[test]
    fn adaptive_replans_when_distribution_flips() {
        use acqp_obs::{NoopSink, Recorder};
        use std::sync::Arc;

        let (schema, _, query) = setup();
        // History: pred on `a` passes 90% of tuples, pred on `b` only
        // 10% — the planner fronts `b` for cheap rejections.
        let mut hist_rows = Vec::new();
        for i in 0..200u16 {
            let (a, b) = (u16::from(i % 10 != 0), u16::from(i % 10 == 0));
            hist_rows.push(vec![a, b, i % 2]);
        }
        let hist = Dataset::from_rows(&schema, hist_rows).unwrap();
        // Live: the selectivities flipped — `b` now passes 90% and the
        // stale b-first plan acquires both sensors almost every epoch.
        let mut live_rows = Vec::new();
        for i in 0..240u16 {
            let (a, b) = (u16::from(i % 10 == 0), u16::from(i % 10 != 0));
            live_rows.push(vec![a, b, i % 2]);
        }
        let live = Dataset::from_rows(&schema, live_rows).unwrap();

        let bs = Basestation::new(schema.clone(), &hist);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let rec = Recorder::new(Arc::new(NoopSink));
        let cfg = AdaptiveConfig {
            drift: DriftConfig { threshold: 0.2, min_samples: 16 },
            check_every: 4,
            sample_every: 2,
            window: 64,
            min_window: 8,
            ..AdaptiveConfig::default()
        };
        let mut motes = fleet_from_trace(&live, 2);
        let rep = run_simulation_adaptive(
            &bs,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            &FaultModel::lossy(5, 0.05),
            &cfg,
            &rec,
        )
        .unwrap();
        assert!(rep.sim.all_correct, "re-planning must never corrupt verdicts");
        assert!(!rep.replans.is_empty(), "flipped correlation must trigger a re-plan");
        let adopted: Vec<_> = rep.replans.iter().filter(|r| r.adopted).collect();
        assert!(!adopted.is_empty(), "a strictly cheaper plan exists and must be adopted");
        for r in &rep.replans {
            if r.adopted {
                assert!(r.new_cost < r.stale_cost);
            }
        }
        let snap = rec.drain();
        assert_eq!(snap.counter("sensornet.replan.triggered"), rep.replans.len() as u64);
        assert_eq!(snap.counter("sensornet.replan.adopted"), adopted.len() as u64);
        assert!(rep.samples_delivered > 0);
    }
}
