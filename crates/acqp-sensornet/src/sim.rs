//! The epoch-loop simulation: dissemination, per-epoch plan execution on
//! every mote, result reporting, network-wide energy accounting.

use acqp_core::{Dataset, Query, Schema};
use acqp_obs::Recorder;

use crate::basestation::PlannedQuery;
use crate::energy::{EnergyLedger, EnergyModel};
use crate::interp::execute_wire;
use crate::mote::Mote;

/// Result of simulating one planned query over a fleet of motes.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Epochs executed.
    pub epochs: usize,
    /// Tuples evaluated (motes × epochs).
    pub tuples: usize,
    /// Tuples that satisfied the query (transmitted to the basestation).
    pub results: usize,
    /// Whether every verdict matched ground truth.
    pub all_correct: bool,
    /// Aggregate energy over all motes.
    pub network: EnergyLedger,
    /// Per-mote energy ledgers.
    pub per_mote: Vec<EnergyLedger>,
    /// Mean per-tuple sensing energy (µJ) — the quantity conditional
    /// plans minimize.
    pub sensing_uj_per_tuple: f64,
}

/// Size of one reported result tuple on air, in bytes (id + values of
/// the selected attributes; a fixed small constant keeps the model
/// simple).
const RESULT_BYTES: usize = 8;

/// Runs `planned` for `epochs` epochs on the given motes.
///
/// Each mote receives the plan (radio rx), executes its wire encoding
/// once per epoch against its own trace (sensing + board energy), and
/// transmits a fixed-size result packet for every passing tuple.
pub fn run_simulation(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
) -> SimReport {
    run_simulation_recorded(schema, query, planned, motes, model, epochs, &Recorder::disabled())
}

/// Like [`run_simulation`], recording `sensornet.*` metrics: tuple /
/// result / radio-message counters, a per-epoch acquisition histogram,
/// and per-mote energy gauges (see `DESIGN.md` §8).
pub fn run_simulation_recorded(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    rec: &Recorder,
) -> SimReport {
    let span = rec.span("sensornet.simulate");
    let tuples_c = rec.counter("sensornet.tuples");
    let results_c = rec.counter("sensornet.results");
    let radio_c = rec.counter("sensornet.radio.msgs");
    let acq_hist = rec.hist("sensornet.acquisitions_per_tuple");

    // Dissemination.
    for m in motes.iter_mut() {
        m.receive(planned.wire.len(), model);
        radio_c.incr(1);
    }

    let mut results = 0usize;
    let mut tuples = 0usize;
    let mut all_correct = true;
    for e in 0..epochs {
        for m in motes.iter_mut() {
            if e >= m.epochs() {
                continue;
            }
            tuples += 1;
            tuples_c.incr(1);
            let out = {
                let mut src = m.epoch_source(e, schema, model);
                execute_wire(&planned.wire, query, schema, &mut src)
                    .expect("basestation-produced wire plans are well-formed")
            };
            acq_hist.observe(out.acquired.len() as u64);
            let truth = query.eval_with(|a| m.peek(e, a));
            all_correct &= out.verdict == truth;
            if out.verdict {
                results += 1;
                results_c.incr(1);
                radio_c.incr(1);
                m.transmit(RESULT_BYTES, model);
            }
        }
    }

    let per_mote: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    if rec.enabled() {
        for (m, l) in motes.iter().zip(&per_mote) {
            let id = m.id();
            rec.gauge(&format!("sensornet.mote{id}.sensing_uj"), l.sensing_uj);
            rec.gauge(&format!("sensornet.mote{id}.radio_uj"), l.radio_tx_uj + l.radio_rx_uj);
            rec.gauge(&format!("sensornet.mote{id}.total_uj"), l.total_uj());
        }
    }
    let mut network = EnergyLedger::default();
    for l in &per_mote {
        network.absorb(l);
    }
    drop(span);
    SimReport {
        epochs,
        tuples,
        results,
        all_correct,
        network,
        per_mote,
        sensing_uj_per_tuple: if tuples > 0 { network.sensing_uj / tuples as f64 } else { 0.0 },
    }
}

/// Splits a flat multi-mote trace (one row per epoch, whole-network
/// schema — the Garden layout) into per-mote traces is not needed: in
/// the Garden model every mote evaluates the *network-wide* tuple, so
/// each "mote" is handed the same epoch rows. This helper instead builds
/// a fleet of `n` motes that all observe the given trace.
pub fn fleet_from_trace(trace: &Dataset, n: u16) -> Vec<Mote> {
    (0..n).map(|id| Mote::new(id, trace.clone())).collect()
}

/// Like [`run_simulation`] but over a multihop collection tree:
/// dissemination floods down the tree (interior motes forward the plan)
/// and every result climbs hop by hop, charging each ancestor a relay.
/// Returns the report plus the basestation's own transmit energy.
pub fn run_simulation_multihop(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    topo: &crate::topology::Topology,
    model: &EnergyModel,
    epochs: usize,
) -> (SimReport, f64) {
    assert_eq!(motes.len(), topo.len());
    // Dissemination down the tree.
    let mut ledgers: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    let bs_tx = topo.charge_dissemination(planned.wire.len(), model, &mut ledgers);

    let mut results = 0usize;
    let mut tuples = 0usize;
    let mut all_correct = true;
    for e in 0..epochs {
        for (mi, m) in motes.iter_mut().enumerate() {
            if e >= m.epochs() {
                continue;
            }
            tuples += 1;
            let out = {
                let mut src = m.epoch_source(e, schema, model);
                execute_wire(&planned.wire, query, schema, &mut src)
                    .expect("basestation-produced wire plans are well-formed")
            };
            let truth = query.eval_with(|a| m.peek(e, a));
            all_correct &= out.verdict == truth;
            if out.verdict {
                results += 1;
                topo.charge_result(mi, RESULT_BYTES, model, &mut ledgers);
            }
        }
    }
    // Merge sensing/board energy (tracked inside each mote) with the
    // radio energy tracked by the topology layer.
    for (m, topo_ledger) in motes.iter_mut().zip(&ledgers) {
        let l = m.ledger_mut();
        l.radio_rx_uj = topo_ledger.radio_rx_uj;
        l.radio_tx_uj = topo_ledger.radio_tx_uj;
    }
    let per_mote: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    let mut network = EnergyLedger::default();
    for l in &per_mote {
        network.absorb(l);
    }
    let report = SimReport {
        epochs,
        tuples,
        results,
        all_correct,
        sensing_uj_per_tuple: if tuples > 0 { network.sensing_uj / tuples as f64 } else { 0.0 },
        network,
        per_mote,
    };
    (report, bs_tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basestation::{Basestation, PlannerChoice};
    use acqp_core::{Attribute, Pred};

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 100.0),
            Attribute::new("b", 2, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..400u16 {
            let t = i % 2;
            let a = if i % 10 == 0 { 1 - t } else { t };
            let b = if i % 12 == 0 { t } else { 1 - t };
            rows.push(vec![a, b, t]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn simulation_accounts_and_validates() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();

        let mut motes = fleet_from_trace(&live, 3);
        let report = run_simulation(
            &schema,
            &query,
            &planned,
            &mut motes,
            &EnergyModel::mica_like(),
            live.len(),
        );
        assert!(report.all_correct);
        assert_eq!(report.tuples, 3 * live.len());
        // Dissemination was charged to every mote.
        assert!(report.network.radio_rx_uj > 0.0);
        assert_eq!(report.per_mote.len(), 3);
        // Sensing energy per tuple sits between the single- and
        // two-sensor cost.
        assert!(report.sensing_uj_per_tuple >= 1.0);
        assert!(report.sensing_uj_per_tuple <= 201.0);
    }

    #[test]
    fn recorded_simulation_reports_network_metrics() {
        use acqp_obs::{NoopSink, Recorder};
        use std::sync::Arc;

        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let mut motes = fleet_from_trace(&live, 2);
        let rec = Recorder::new(Arc::new(NoopSink));
        let report = run_simulation_recorded(
            &schema,
            &query,
            &planned,
            &mut motes,
            &EnergyModel::mica_like(),
            live.len(),
            &rec,
        );
        let snap = rec.drain();
        assert_eq!(snap.counter("sensornet.tuples"), report.tuples as u64);
        assert_eq!(snap.counter("sensornet.results"), report.results as u64);
        // Radio messages = one dissemination rx per mote + one tx per result.
        assert_eq!(snap.counter("sensornet.radio.msgs"), 2 + report.results as u64);
        assert_eq!(snap.hists["sensornet.acquisitions_per_tuple"].1, report.tuples as u64);
        for (m, l) in motes.iter().zip(&report.per_mote) {
            let g = snap.value(&format!("sensornet.mote{}.total_uj", m.id()));
            assert!((g - l.total_uj()).abs() < 1e-9);
        }
        assert_eq!(snap.spans["sensornet.simulate"].count, 1);
    }

    #[test]
    fn conditional_plan_saves_network_energy_vs_naive() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let model = EnergyModel::mica_like();

        let run = |choice: PlannerChoice| {
            let planned = bs.plan_query(&query, choice, 0.0).unwrap();
            let mut motes = fleet_from_trace(&live, 2);
            run_simulation(&schema, &query, &planned, &mut motes, &model, live.len())
        };
        let naive = run(PlannerChoice::Naive);
        let cond = run(PlannerChoice::Heuristic(4));
        assert!(naive.all_correct && cond.all_correct);
        assert!(
            cond.network.sensing_uj < naive.network.sensing_uj,
            "conditional {} vs naive {}",
            cond.network.sensing_uj,
            naive.network.sensing_uj
        );
    }

    #[test]
    fn board_powerup_charged_in_simulation() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let model = EnergyModel::mica_like().with_board(vec![0, 1], 300.0);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let mut motes = fleet_from_trace(&live, 1);
        let report = run_simulation(&schema, &query, &planned, &mut motes, &model, live.len());
        assert!(report.network.board_uj > 0.0);
        // At most one power-up per tuple.
        assert!(report.network.board_uj <= 300.0 * report.tuples as f64);
    }
}
