//! The epoch-loop simulation: dissemination, per-epoch plan execution on
//! every mote, result reporting, network-wide energy accounting — with
//! optional fault injection ([`run_simulation_faulty`]),
//! drift-triggered re-planning ([`run_simulation_adaptive`]), and
//! basestation crash/recovery ([`run_simulation_crashy`]).
//!
//! All entry points share one [`Engine`]; the lossless
//! [`run_simulation`] simply runs it with [`FaultModel::none`], so a
//! faulty run with a zero loss rate is *bit-identical* to the lossless
//! simulator by construction (at zero loss the first attempt of every
//! packet succeeds and no extra energy is charged). The same argument
//! extends to crashes: a crashy run with an empty crash schedule only
//! adds journaling side-writes, never a different fault roll or energy
//! charge, so its [`FaultReport`] is bit-identical to
//! [`run_simulation_faulty`]'s.
//!
//! Crash semantics: the engine distinguishes what each mote *actually
//! holds* (`mote_has`, physical state that survives a basestation
//! crash) from what the basestation *believes* it holds (`bs_known`,
//! process memory wiped by a crash). A restart recovers the basestation
//! from its checkpoint/WAL directory, then re-disseminates the current
//! plan to every mote it no longer knows about — real radio energy,
//! charged like any other dissemination.

use acqp_core::drift::DriftMonitor;
use acqp_core::prelude::{estimated_selectivities, CountingEstimator, Ranges};
use acqp_core::{
    truth_columnar, BatchExecutor, BatchOutcome, ColumnBatch, CostModel, Dataset, DriftConfig,
    ExecMode, PreparedPlan, Query, Schema, TupleSource, BATCH_ROWS,
};
use acqp_obs::{Counter, FlightRecorder, Hist, Recorder, TraceValue};
use acqp_persist::{BasestationCheckpoint, PlanRecord, WalRecord};
use acqp_stream::SlidingWindow;

use crate::basestation::{Basestation, PlannedQuery, ReplanBudget};
use crate::energy::{EnergyLedger, EnergyModel};
use crate::fault::{attempt_packet, FaultModel, FaultStats, FaultStream, FaultySource};
use crate::interp::execute_wire;
use crate::mote::Mote;
use crate::recovery::{core_err, CrashConfig, CrashReport, CrashRuntime, Journal, RecoveredState};

/// Result of simulating one planned query over a fleet of motes.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Epochs executed.
    pub epochs: usize,
    /// Tuples evaluated (mote-epochs that actually executed a plan).
    pub tuples: usize,
    /// Tuples that satisfied the query (the mote transmitted a result,
    /// delivered or not).
    pub results: usize,
    /// Whether every verdict matched ground truth.
    pub all_correct: bool,
    /// Aggregate energy over all motes.
    pub network: EnergyLedger,
    /// Per-mote energy ledgers.
    pub per_mote: Vec<EnergyLedger>,
    /// Mean per-tuple sensing energy (µJ) — the quantity conditional
    /// plans minimize. `0.0` when no tuple was evaluated (zero epochs
    /// or an empty fleet), never `NaN`.
    pub sensing_uj_per_tuple: f64,
}

impl SimReport {
    /// Assembles a report, computing the network aggregate and the
    /// per-tuple sensing mean with the degenerate cases (`epochs == 0`,
    /// empty fleet) pinned to `0.0` instead of `NaN`.
    fn assemble(
        epochs: usize,
        tuples: usize,
        results: usize,
        all_correct: bool,
        per_mote: Vec<EnergyLedger>,
    ) -> SimReport {
        let mut network = EnergyLedger::default();
        for l in &per_mote {
            network.absorb(l);
        }
        let sensing_uj_per_tuple =
            if tuples > 0 { network.sensing_uj / tuples as f64 } else { 0.0 };
        SimReport { epochs, tuples, results, all_correct, network, per_mote, sensing_uj_per_tuple }
    }
}

/// On-air width of one attribute value: one byte for domains that fit,
/// two otherwise.
fn attr_width(domain: u16) -> usize {
    if domain as u32 <= 256 {
        1
    } else {
        2
    }
}

/// Size of one reported result packet: a two-byte header (mote id +
/// sequence) plus the values of the attributes the query selects, each
/// at its domain's width. Replaces the old fixed 8-byte packet, which
/// mischarged radio energy for narrow and wide queries alike.
pub fn result_packet_bytes(schema: &Schema, query: &Query) -> usize {
    2 + query.attrs().iter().map(|&a| attr_width(schema.domain(a))).sum::<usize>()
}

/// Size of one statistics-sample packet: header, every attribute of the
/// schema at its width, plus two bytes per predicate of piggybacked
/// evaluated/passed counter deltas.
pub fn sample_packet_bytes(schema: &Schema, query: &Query) -> usize {
    2 + schema.attrs().iter().map(|a| attr_width(a.domain())).sum::<usize>() + 2 * query.len()
}

/// One drift-triggered re-planning decision during an adaptive run.
#[derive(Debug, Clone)]
pub struct ReplanEvent {
    /// Epoch at whose end the check fired.
    pub epoch: usize,
    /// The monitor's max per-predicate divergence at that point.
    pub divergence: f64,
    /// Whether the candidate plan was adopted and re-disseminated.
    pub adopted: bool,
    /// Whether the budgeted exhaustive search truncated.
    pub truncated: bool,
    /// Whether the candidate came from the `GreedySeq` fallback.
    pub fell_back: bool,
    /// Expected cost of continuing the stale plan under the window.
    pub stale_cost: f64,
    /// Expected cost of the candidate under the window.
    pub new_cost: f64,
}

/// A [`SimReport`] extended with fault-path accounting.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The core simulation report.
    pub sim: SimReport,
    /// Passing tuples whose result packet reached the basestation.
    pub delivered_results: usize,
    /// Passing tuples whose result packet timed out (all attempts lost).
    pub lost_results: usize,
    /// Tuples abandoned because a sensor read failed past the cap.
    pub aborted_tuples: usize,
    /// Mote-epochs lost to dropout schedules.
    pub offline_epochs: usize,
    /// Mote-epochs skipped because the mote never received any plan.
    pub undisseminated_epochs: usize,
    /// Statistics samples that reached the basestation (adaptive runs).
    pub samples_delivered: usize,
    /// Basestation transmit energy spent on (re-)dissemination.
    pub bs_tx_uj: f64,
    /// Drift checks that ran a re-plan (adaptive runs only).
    pub replans: Vec<ReplanEvent>,
}

impl FaultReport {
    /// Fraction of passing tuples whose results actually arrived
    /// (`1.0` when nothing passed — nothing was lost).
    pub fn delivery_rate(&self) -> f64 {
        if self.sim.results > 0 {
            self.delivered_results as f64 / self.sim.results as f64
        } else {
            1.0
        }
    }
}

/// Knobs for the adaptive (drift-triggered re-planning) loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Divergence threshold / sample gating (see [`DriftConfig`]).
    pub drift: DriftConfig,
    /// Epochs between drift checks at the basestation.
    pub check_every: usize,
    /// Every `sample_every` epochs each mote uploads one full tuple for
    /// the statistics window (paying sensing + radio for it).
    pub sample_every: usize,
    /// Sliding-window capacity (tuples) behind the re-plan estimator.
    pub window: usize,
    /// Minimum window fill before a re-plan is attempted.
    pub min_window: usize,
    /// Planning budget for each re-plan.
    pub budget: ReplanBudget,
    /// §2.4 plan-size penalty applied to re-planned candidates.
    pub alpha: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            drift: DriftConfig::default(),
            check_every: 8,
            sample_every: 4,
            window: 256,
            min_window: 32,
            budget: ReplanBudget::default(),
            alpha: 0.0,
        }
    }
}

/// Runs `planned` for `epochs` epochs on the given motes, losslessly.
///
/// Each mote receives the plan (radio rx), executes its wire encoding
/// once per epoch against its own trace (sensing + board energy), and
/// transmits a result packet for every passing tuple.
pub fn run_simulation(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
) -> SimReport {
    run_simulation_recorded(schema, query, planned, motes, model, epochs, &Recorder::disabled())
}

/// Like [`run_simulation`], recording `sensornet.*` metrics: tuple /
/// result / radio-message counters, a per-epoch acquisition histogram,
/// and per-mote energy gauges (see `DESIGN.md` §8).
pub fn run_simulation_recorded(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    rec: &Recorder,
) -> SimReport {
    let lossless = FaultModel::none();
    let mut eng =
        Engine::new(schema, query, planned, motes, model, &lossless, None, None, None, rec);
    eng.run(epochs).sim
}

/// Like [`run_simulation_recorded`], dispatching on [`ExecMode`]:
/// `Scalar` is the engine-based lossless loop verbatim, `Vectorized`
/// executes each mote's trace through the columnar batch executor and
/// replays the precomputed acquisition chains into the energy ledgers —
/// reports, ledgers and recorded `sensornet.*` metrics are bitwise
/// identical (see `DESIGN.md` §12). Fault injection, adaptivity and
/// crash recovery remain scalar-only: their per-tuple retry state is
/// inherently sequential.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_mode(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    mode: ExecMode,
    rec: &Recorder,
) -> SimReport {
    match mode {
        ExecMode::Scalar => {
            run_simulation_recorded(schema, query, planned, motes, model, epochs, rec)
        }
        ExecMode::Vectorized => {
            run_simulation_vectorized(schema, query, planned, motes, model, epochs, rec)
        }
    }
}

/// The vectorized lossless simulation: per mote, the trace is executed
/// in [`BATCH_ROWS`] column windows by the batch executor, then each
/// epoch's energy is charged by replaying its (node-constant)
/// acquisition chain in order through [`Mote::charge_epoch`] — the
/// exact `f64` additions a [`crate::mote::MeteredSource`] performs, in
/// the same per-mote order, so ledgers match the scalar engine to the
/// bit. Instruments mirror the engine's lossless path one-for-one,
/// including the first-attempt `sensornet.fault.*` counters.
fn run_simulation_vectorized(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    rec: &Recorder,
) -> SimReport {
    let span = rec.span("sensornet.simulate");
    let flight = rec.flight().clone();
    let start_seq =
        flight.emit(0, 0, "sim.start", &[("motes", motes.len().into()), ("epochs", epochs.into())]);
    let tuples_c = rec.counter("sensornet.tuples");
    let results_c = rec.counter("sensornet.results");
    let radio_c = rec.counter("sensornet.radio.msgs");
    let acq_hist = rec.hist("sensornet.acquisitions_per_tuple");
    let stats = FaultStats::new(rec);
    // The engine registers the replan taxonomy even on runs that never
    // replan; mirror that so snapshots are key-identical across modes.
    rec.counter("sensornet.replan.triggered");
    rec.counter("sensornet.replan.adopted");
    let uplink_bytes = result_packet_bytes(schema, query);
    let prepared = PreparedPlan::new(&planned.plan, query, schema, &CostModel::PerAttribute);
    let mut exec = BatchExecutor::new();
    let mut out = BatchOutcome::default();
    let mut truth = Vec::new();

    // Initial dissemination: every mote is online and the first attempt
    // always succeeds at zero loss. `bs_tx_uj` mirrors the scalar
    // engine's per-mote accumulation expression exactly.
    let mut bs_tx_uj = 0.0;
    for m in motes.iter_mut() {
        stats.diss_attempts.incr(1);
        radio_c.incr(1);
        m.receive(planned.wire.len(), model);
        bs_tx_uj += (planned.wire.len()) as f64 * model.radio_tx_uj_per_byte;
    }

    // Flight tick bookkeeping: the engine emits `epoch.tick` in epoch
    // order with fleet sums folded in mote order; this mote-major loop
    // instead records per-(mote, epoch) ledger totals and per-epoch
    // tallies, then emits the same ticks after the loop — same values,
    // same fold order, so fixed-seed traces are byte-identical across
    // exec modes. All of it is gated: a disabled flight costs nothing.
    let track = flight.enabled();
    let mut last_energy = 0.0;
    if track {
        last_energy = motes.iter().fold(0.0, |acc, m| acc + m.ledger().total_uj());
        let delivered = motes.len();
        flight.emit(
            0,
            start_seq,
            "sim.disseminate",
            &[("delivered", delivered.into()), ("bs_tx_uj", bs_tx_uj.into())],
        );
    }
    let mut ep_tuples = vec![0u64; if track { epochs } else { 0 }];
    let mut ep_results = vec![0u64; if track { epochs } else { 0 }];
    let mut ep_acq = vec![0u64; if track { epochs } else { 0 }];
    let mut energy: Vec<Vec<f64>> =
        if track { vec![vec![0.0; epochs]; motes.len()] } else { Vec::new() };

    let mut tuples = 0usize;
    let mut results = 0usize;
    let mut all_correct = true;
    for (mi, m) in motes.iter_mut().enumerate() {
        let n = epochs.min(m.epochs());
        let mut start = 0usize;
        while start < n {
            let len = BATCH_ROWS.min(n - start);
            {
                let batch = ColumnBatch::slice(m.trace(), start, len);
                exec.execute_batch(&prepared, &batch, None, &mut out);
                truth_columnar(query, &batch, &mut truth);
            }
            for (slot, &t) in truth.iter().enumerate().take(len) {
                tuples += 1;
                tuples_c.incr(1);
                let chain = out.acquired(&prepared, slot);
                m.charge_epoch(chain, schema, model);
                acq_hist.observe(chain.len() as u64);
                all_correct &= out.verdict(slot) == t;
                if out.verdict(slot) {
                    results += 1;
                    results_c.incr(1);
                    stats.result_attempts.incr(1);
                    m.transmit(uplink_bytes, model);
                    radio_c.incr(1);
                }
                if track {
                    let e = start + slot;
                    ep_tuples[e] += 1;
                    ep_acq[e] += chain.len() as u64;
                    ep_results[e] += u64::from(out.verdict(slot));
                    energy[mi][e] = m.ledger().total_uj();
                }
            }
            start += len;
        }
        if track {
            // Epochs past this mote's trace leave its ledger untouched
            // (the scalar engine skips them), so its total carries over.
            let rest = m.ledger().total_uj();
            for slot in energy[mi].iter_mut().skip(n) {
                *slot = rest;
            }
        }
    }
    if track {
        for e in 0..epochs {
            let fleet = (0..energy.len()).fold(0.0, |acc, mi| acc + energy[mi][e]);
            let mut fields: Vec<(String, TraceValue)> = vec![
                ("tuples".to_string(), ep_tuples[e].into()),
                ("results".to_string(), ep_results[e].into()),
                ("acquisitions".to_string(), ep_acq[e].into()),
                ("energy_uj".to_string(), fleet.into()),
                ("denergy_uj".to_string(), (fleet - last_energy).into()),
            ];
            for (mi, m) in motes.iter().enumerate() {
                fields.push((format!("mote{}_uj", m.id()), energy[mi][e].into()));
            }
            flight.emit_owned(e as u64, start_seq, "epoch.tick", fields);
            last_energy = fleet;
        }
    }
    flight.emit(
        epochs as u64,
        start_seq,
        "sim.end",
        &[
            ("tuples", tuples.into()),
            ("results", results.into()),
            ("all_correct", all_correct.into()),
        ],
    );

    let per_mote: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    if rec.enabled() {
        for (m, l) in motes.iter().zip(&per_mote) {
            let id = m.id();
            rec.gauge(&format!("sensornet.mote{id}.sensing_uj"), l.sensing_uj);
            rec.gauge(&format!("sensornet.mote{id}.radio_uj"), l.radio_tx_uj + l.radio_rx_uj);
            rec.gauge(&format!("sensornet.mote{id}.total_uj"), l.total_uj());
        }
    }
    let report = SimReport::assemble(epochs, tuples, results, all_correct, per_mote);
    drop(span);
    report
}

/// Runs the simulation under a [`FaultModel`]: lossy dissemination and
/// result reporting with bounded retry + exponential backoff, sensing
/// failures, and mote dropouts — every retransmission charged to the
/// energy ledgers and counted under `sensornet.fault.*`.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_faulty(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    faults: &FaultModel,
    rec: &Recorder,
) -> FaultReport {
    let mut eng = Engine::new(schema, query, planned, motes, model, faults, None, None, None, rec);
    eng.run(epochs)
}

/// Like [`run_simulation_faulty`] plus the basestation control loop:
/// motes piggyback per-predicate evaluated/passed counters on their
/// uplinks and periodically upload full statistics samples; the
/// basestation's [`DriftMonitor`] compares actual selectivities against
/// the plan's estimates, and when divergence crosses the threshold it
/// re-plans under the planning budget (falling back to `GreedySeq` on
/// truncation), adopting and re-disseminating the candidate only if it
/// beats the stale plan under the drifted window.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_adaptive(
    bs: &Basestation<'_>,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    faults: &FaultModel,
    cfg: &AdaptiveConfig,
    rec: &Recorder,
) -> acqp_core::Result<FaultReport> {
    let monitor = DriftMonitor::new(bs.estimated_selectivities(query), cfg.drift)?;
    let state = AdaptiveState {
        bs,
        cfg,
        monitor,
        window: SlidingWindow::new(bs.schema(), cfg.window.max(1)),
        pend_eval: vec![vec![0; query.len()]; motes.len()],
        pend_pass: vec![vec![0; query.len()]; motes.len()],
    };
    let mut eng = Engine::new(
        bs.schema(),
        query,
        planned,
        motes,
        model,
        faults,
        Some(state),
        None,
        None,
        rec,
    );
    Ok(eng.run(epochs))
}

/// Like [`run_simulation_adaptive`] (or [`run_simulation_faulty`] when
/// `adaptive` is `None`) with a crash-prone basestation: at every epoch
/// in `crash.crash_epochs` — plus independently at `crash.crash_rate`
/// per epoch on the seeded [`FaultStream::Crash`] stream — the
/// basestation process dies and restarts, losing all in-memory state.
///
/// The restart recovers from `crash.checkpoint_dir` (newest valid
/// snapshot + idempotent WAL replay; cold start from the genesis plan
/// when nothing validates) and re-disseminates its current plan to the
/// whole fleet, with the radio energy charged like any other
/// dissemination and totalled in
/// [`CrashReport::recovery_rediss_uj`]. With an empty crash schedule
/// and zero crash rate the returned [`FaultReport`] is bit-identical
/// to the non-crashy run's: journaling writes files but never touches
/// a fault roll or an energy ledger.
///
/// Only I/O failures (unwritable checkpoint directory) error; corrupt
/// snapshots or a torn WAL are recovery *inputs*, absorbed and counted
/// under `recovery.*`.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_crashy(
    bs: &Basestation<'_>,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    model: &EnergyModel,
    epochs: usize,
    faults: &FaultModel,
    adaptive: Option<&AdaptiveConfig>,
    crash: &CrashConfig,
    rec: &Recorder,
) -> acqp_core::Result<CrashReport> {
    let runtime = CrashRuntime::new(crash, rec).map_err(core_err)?;
    let schema = bs.schema();
    // The long-lived history estimator models the basestation's warm
    // in-memory state: arming the drift monitor computes the query's
    // truth masks once, and checkpoints carry that mask cache so a
    // recovery can skip re-paying the dataset pass.
    let hist_est =
        adaptive.map(|_| CountingEstimator::with_ranges(bs.history(), Ranges::root(schema)));
    let adaptive_state = match adaptive {
        None => None,
        Some(cfg) => {
            let est = hist_est.as_ref().expect("estimator built for adaptive runs above");
            let monitor = DriftMonitor::new(estimated_selectivities(query, est), cfg.drift)?;
            Some(AdaptiveState {
                bs,
                cfg,
                monitor,
                window: SlidingWindow::new(schema, cfg.window.max(1)),
                pend_eval: vec![vec![0; query.len()]; motes.len()],
                pend_pass: vec![vec![0; query.len()]; motes.len()],
            })
        }
    };
    let mut eng = Engine::new(
        schema,
        query,
        planned,
        motes,
        model,
        faults,
        adaptive_state,
        Some(runtime),
        hist_est,
        rec,
    );
    let fault = eng.run(epochs);
    let mut cr = eng.crash.take().expect("crashy runs always carry a crash runtime");
    if let Some(e) = cr.take_error() {
        return Err(core_err(e));
    }
    Ok(CrashReport {
        fault,
        crashes: cr.crashes,
        cold_starts: cr.cold_starts,
        corrupt_snapshots: cr.corrupt_snapshots,
        wal_replayed: cr.wal_replayed,
        checkpoints_written: cr.checkpoints_written,
        recovery_rediss_uj: cr.recovery_rediss_uj,
    })
}

struct AdaptiveState<'a> {
    bs: &'a Basestation<'a>,
    cfg: &'a AdaptiveConfig,
    monitor: DriftMonitor,
    window: SlidingWindow,
    /// Per-mote per-predicate counter deltas not yet flushed to the
    /// basestation (they ride on the next *delivered* uplink). These
    /// buffers live at the motes, so a basestation crash does not lose
    /// them — they arrive with the next successful uplink as usual.
    pend_eval: Vec<Vec<u64>>,
    pend_pass: Vec<Vec<u64>>,
}

impl AdaptiveState<'_> {
    /// Flushes mote `i`'s pending predicate counters into the monitor —
    /// called only when an uplink from `i` was actually delivered.
    /// Crashy runs journal each flushed delta before applying it, so a
    /// crash replays exactly the counts the monitor had absorbed.
    fn flush_counters(&mut self, i: usize, mut journal: Option<&mut Journal>) {
        for j in 0..self.pend_eval[i].len() {
            let (e, p) = (self.pend_eval[i][j], self.pend_pass[i][j]);
            if e > 0 {
                if let Some(jr) = journal.as_deref_mut() {
                    jr.append(&WalRecord::Observe { pred: j as u16, evaluated: e, passed: p });
                }
                self.monitor.observe_counts(j, e, p);
                self.pend_eval[i][j] = 0;
                self.pend_pass[i][j] = 0;
            }
        }
    }
}

/// Emits a `fault.retry` flight event for any packet needing more than
/// one attempt or lost outright. Lossless runs (first attempt always
/// delivers) emit none — which keeps their traces identical across
/// scalar and vectorized exec modes.
pub(crate) fn emit_retry(
    flight: &FlightRecorder,
    cause: u64,
    e: usize,
    stream: &str,
    mote: u16,
    d: &crate::fault::Delivery,
) {
    if d.attempts > 1 || !d.delivered {
        flight.emit(
            e as u64,
            cause,
            "fault.retry",
            &[
                ("stream", stream.into()),
                ("mote", u64::from(mote).into()),
                ("attempts", u64::from(d.attempts).into()),
                ("delivered", d.delivered.into()),
            ],
        );
    }
}

/// The shared engine behind every simulation entry point, stepped one
/// epoch at a time so the crashy runner can interpose crashes at epoch
/// boundaries without duplicating the loop.
struct Engine<'a> {
    schema: &'a Schema,
    query: &'a Query,
    motes: &'a mut [Mote],
    model: &'a EnergyModel,
    faults: &'a FaultModel,
    rec: &'a Recorder,
    adaptive: Option<AdaptiveState<'a>>,
    crash: Option<CrashRuntime<'a>>,
    /// The basestation's warm history estimator (crashy adaptive runs
    /// only) — rebuilt, and its mask cache re-seeded, on recovery.
    hist_est: Option<CountingEstimator<'a>>,

    // Pre-hoisted instruments.
    tuples_c: Counter,
    results_c: Counter,
    radio_c: Counter,
    acq_hist: Hist,
    replan_trig_c: Counter,
    replan_adopt_c: Counter,
    stats: FaultStats,

    // Flight recorder (DESIGN.md §13): causal control events plus the
    // per-epoch time series. Disabled unless the recorder carries one.
    flight: FlightRecorder,
    /// `seq` of this run's `sim.start` event — the causal root every
    /// engine event points back to.
    start_seq: u64,
    // Per-epoch tick accumulators, reset by `epoch_tick`.
    ep_tuples: u64,
    ep_results: u64,
    ep_acq: u64,
    /// Fleet energy total at the previous tick (for per-epoch deltas).
    last_energy: f64,

    // Packet wiring.
    sample_bytes: usize,
    uplink_bytes: usize,
    /// `pred_of[a]` = index of the predicate on attribute `a`, if any.
    pred_of: Vec<Option<usize>>,

    /// Every plan version ever disseminated; `plans[0]` is the genesis
    /// plan the basestation can always recompute from history.
    plans: Vec<PlannedQuery>,
    /// The version the basestation currently wants the fleet to run.
    cur: usize,
    /// Ground truth: the version mote `i` actually holds. Physical
    /// state at the motes — survives basestation crashes.
    mote_has: Vec<Option<usize>>,
    /// The basestation's belief about `mote_has`. Process memory —
    /// wiped to `None` by a crash, which is exactly what forces the
    /// recovery re-dissemination.
    bs_known: Vec<Option<usize>>,

    // Accounting.
    tuples: usize,
    results: usize,
    all_correct: bool,
    delivered_results: usize,
    lost_results: usize,
    aborted_tuples: usize,
    offline_epochs: usize,
    undisseminated_epochs: usize,
    samples_delivered: usize,
    bs_tx_uj: f64,
    replans: Vec<ReplanEvent>,
}

impl<'a> Engine<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        schema: &'a Schema,
        query: &'a Query,
        planned: &PlannedQuery,
        motes: &'a mut [Mote],
        model: &'a EnergyModel,
        faults: &'a FaultModel,
        adaptive: Option<AdaptiveState<'a>>,
        crash: Option<CrashRuntime<'a>>,
        hist_est: Option<CountingEstimator<'a>>,
        rec: &'a Recorder,
    ) -> Engine<'a> {
        let result_bytes = result_packet_bytes(schema, query);
        let sample_bytes = sample_packet_bytes(schema, query);
        // Piggybacked counter deltas ride on result packets only when
        // the adaptive loop is on (the plain simulators don't collect
        // stats).
        let uplink_bytes = result_bytes + if adaptive.is_some() { 2 * query.len() } else { 0 };
        let mut pred_of: Vec<Option<usize>> = vec![None; schema.len()];
        for (j, &a) in query.attrs().iter().enumerate() {
            pred_of[a] = Some(j);
        }
        let n = motes.len();
        Engine {
            schema,
            query,
            motes,
            model,
            faults,
            rec,
            adaptive,
            crash,
            hist_est,
            tuples_c: rec.counter("sensornet.tuples"),
            results_c: rec.counter("sensornet.results"),
            radio_c: rec.counter("sensornet.radio.msgs"),
            acq_hist: rec.hist("sensornet.acquisitions_per_tuple"),
            replan_trig_c: rec.counter("sensornet.replan.triggered"),
            replan_adopt_c: rec.counter("sensornet.replan.adopted"),
            stats: FaultStats::new(rec),
            flight: rec.flight().clone(),
            start_seq: 0,
            ep_tuples: 0,
            ep_results: 0,
            ep_acq: 0,
            last_energy: 0.0,
            sample_bytes,
            uplink_bytes,
            pred_of,
            plans: vec![planned.clone()],
            cur: 0,
            mote_has: vec![None; n],
            bs_known: vec![None; n],
            tuples: 0,
            results: 0,
            all_correct: true,
            delivered_results: 0,
            lost_results: 0,
            aborted_tuples: 0,
            offline_epochs: 0,
            undisseminated_epochs: 0,
            samples_delivered: 0,
            bs_tx_uj: 0.0,
            replans: Vec::new(),
        }
    }

    /// Drives the full run: initial dissemination, `epochs` stepped
    /// epochs (with crash checks when a crash runtime is attached), and
    /// the final report.
    fn run(&mut self, epochs: usize) -> FaultReport {
        let span = self.rec.span("sensornet.simulate");
        self.start_seq = self.flight.emit(
            0,
            0,
            "sim.start",
            &[("motes", self.motes.len().into()), ("epochs", epochs.into())],
        );
        self.disseminate_initial();
        if self.flight.enabled() {
            let delivered = self.mote_has.iter().filter(|v| v.is_some()).count();
            self.last_energy = self.fleet_total_uj();
            self.flight.emit(
                0,
                self.start_seq,
                "sim.disseminate",
                &[("delivered", delivered.into()), ("bs_tx_uj", self.bs_tx_uj.into())],
            );
        }
        for e in 0..epochs {
            // Crashes land at epoch *boundaries*: the process dies and
            // restarts between epochs, never mid-tuple. Epoch 0 cannot
            // crash — before the initial dissemination there is no
            // state to lose.
            let crashed = e > 0 && self.crash_scheduled(e);
            if crashed {
                self.crash_and_recover(e);
            }
            let pre_rediss =
                if crashed { Some((self.bs_tx_uj, self.mote_rx_total())) } else { None };
            if e > 0 {
                self.redisseminate(e);
            }
            if let Some((tx0, rx0)) = pre_rediss {
                let delta = (self.bs_tx_uj - tx0) + (self.mote_rx_total() - rx0);
                if let Some(cr) = self.crash.as_mut() {
                    cr.recovery_rediss_uj += delta;
                }
            }
            self.run_motes(e);
            self.drift_check(e);
            self.journal_epoch_end(e);
            self.epoch_tick(e);
        }
        let report = self.finish(epochs);
        drop(span);
        report
    }

    /// Initial dissemination round (epoch 0 on the fault clock). Runs
    /// even for a zero-epoch simulation, exactly like the pre-fault
    /// simulator.
    fn disseminate_initial(&mut self) {
        let flight = self.flight.clone();
        let root = self.start_seq;
        for (i, m) in self.motes.iter_mut().enumerate() {
            if !self.faults.online(m.id(), 0) {
                continue;
            }
            let d = attempt_packet(self.faults, FaultStream::Dissemination, m.id(), 0, &self.stats);
            emit_retry(&flight, root, 0, "diss", m.id(), &d);
            self.bs_tx_uj += (d.attempts as usize * self.plans[self.cur].wire.len()) as f64
                * self.model.radio_tx_uj_per_byte;
            self.radio_c.incr(d.attempts as u64);
            if d.delivered {
                m.receive(self.plans[self.cur].wire.len(), self.model);
                self.mote_has[i] = Some(self.cur);
                self.bs_known[i] = Some(self.cur);
            }
        }
    }

    /// Re-dissemination: any mote the basestation believes to lag the
    /// current plan gets a fresh per-epoch attempt window (the initial
    /// round already consumed epoch 0's).
    fn redisseminate(&mut self, e: usize) {
        let flight = self.flight.clone();
        let root = self.start_seq;
        for (i, m) in self.motes.iter_mut().enumerate() {
            if self.bs_known[i] == Some(self.cur) || !self.faults.online(m.id(), e) {
                continue;
            }
            let d = attempt_packet(self.faults, FaultStream::Dissemination, m.id(), e, &self.stats);
            emit_retry(&flight, root, e, "diss", m.id(), &d);
            self.bs_tx_uj += (d.attempts as usize * self.plans[self.cur].wire.len()) as f64
                * self.model.radio_tx_uj_per_byte;
            self.radio_c.incr(d.attempts as u64);
            if d.delivered {
                m.receive(self.plans[self.cur].wire.len(), self.model);
                self.mote_has[i] = Some(self.cur);
                self.bs_known[i] = Some(self.cur);
            }
        }
    }

    /// One epoch of plan execution and uplinks across the fleet.
    fn run_motes(&mut self, e: usize) {
        let flight = self.flight.clone();
        let root = self.start_seq;
        for (i, m) in self.motes.iter_mut().enumerate() {
            if e >= m.epochs() {
                continue;
            }
            let id = m.id();
            if !self.faults.online(id, e) {
                self.stats.offline_epochs.incr(1);
                self.offline_epochs += 1;
                continue;
            }
            let Some(ver) = self.mote_has[i] else {
                self.undisseminated_epochs += 1;
                continue;
            };
            self.tuples += 1;
            self.tuples_c.incr(1);
            self.ep_tuples += 1;
            let wire = &self.plans[ver].wire;
            let (out, aborted) = {
                let src = m.epoch_source(e, self.schema, self.model);
                let mut fsrc = FaultySource::new(src, self.faults, &self.stats, id, e);
                let out = execute_wire(wire, self.query, self.schema, &mut fsrc)
                    .expect("basestation-produced wire plans are well-formed");
                (out, fsrc.aborted())
            };
            self.acq_hist.observe(out.acquired.len() as u64);
            self.ep_acq += out.acquired.len() as u64;
            if aborted {
                self.aborted_tuples += 1;
                continue;
            }
            let truth = self.query.eval_with(|a| m.peek(e, a));
            self.all_correct &= out.verdict == truth;

            // Every acquired attribute with a predicate yields one
            // evaluated/held observation for the drift monitor,
            // buffered until an uplink actually gets through.
            if let Some(st) = self.adaptive.as_mut() {
                for &a in &out.acquired {
                    if let Some(j) = self.pred_of[a] {
                        st.pend_eval[i][j] += 1;
                        st.pend_pass[i][j] += u64::from(self.query.pred(j).eval(m.peek(e, a)));
                    }
                }
            }

            if out.verdict {
                self.results += 1;
                self.results_c.incr(1);
                self.ep_results += 1;
                let d = attempt_packet(self.faults, FaultStream::Result, id, e, &self.stats);
                emit_retry(&flight, root, e, "result", id, &d);
                m.transmit(d.attempts as usize * self.uplink_bytes, self.model);
                self.radio_c.incr(d.attempts as u64);
                if d.delivered {
                    self.delivered_results += 1;
                    if let Some(st) = self.adaptive.as_mut() {
                        st.flush_counters(i, self.crash.as_mut().and_then(|c| c.journal.as_mut()));
                    }
                } else {
                    self.lost_results += 1;
                }
            }

            // Periodic statistics sample: read out the rest of the
            // tuple (sensing honestly charged via the same source
            // rules) and upload the full row for the re-plan window.
            if let Some(st) = self.adaptive.as_mut() {
                let k = st.cfg.sample_every.max(1);
                if e % k == k - 1 {
                    let mut sample_aborted = false;
                    {
                        let src = m.epoch_source(e, self.schema, self.model);
                        let mut fsrc = FaultySource::new(src, self.faults, &self.stats, id, e);
                        for a in 0..self.schema.len() {
                            if !out.acquired.contains(&a) {
                                fsrc.acquire(a);
                                if fsrc.aborted() {
                                    sample_aborted = true;
                                    break;
                                }
                            }
                        }
                    }
                    if !sample_aborted {
                        let d =
                            attempt_packet(self.faults, FaultStream::Sample, id, e, &self.stats);
                        emit_retry(&flight, root, e, "sample", id, &d);
                        m.transmit(d.attempts as usize * self.sample_bytes, self.model);
                        self.radio_c.incr(d.attempts as u64);
                        if d.delivered {
                            self.samples_delivered += 1;
                            let row: Vec<u16> =
                                (0..self.schema.len()).map(|a| m.peek(e, a)).collect();
                            let mut journal = self.crash.as_mut().and_then(|c| c.journal.as_mut());
                            if let Some(jr) = journal.as_deref_mut() {
                                jr.append(&WalRecord::WindowPush { row: row.clone() });
                            }
                            st.window.push(row);
                            st.flush_counters(i, journal);
                        }
                    }
                }
            }
        }
    }

    /// Basestation drift check at epoch end.
    fn drift_check(&mut self, e: usize) {
        let Some(st) = self.adaptive.as_mut() else { return };
        let k = st.cfg.check_every.max(1);
        if (e + 1).is_multiple_of(k)
            && st.monitor.drifted()
            && st.window.len() >= st.cfg.min_window.max(1)
        {
            self.replan_trig_c.incr(1);
            let divergence = st.monitor.max_divergence();
            let window = st
                .window
                .snapshot(self.schema)
                .expect("window rows come from schema-shaped traces");
            let outcome = st
                .bs
                .replan(self.query, &window, &st.cfg.budget, st.cfg.alpha, &self.plans[self.cur])
                .expect("re-planning a valid query cannot fail");
            self.replans.push(ReplanEvent {
                epoch: e,
                divergence,
                adopted: outcome.adopted,
                truncated: outcome.truncated,
                fell_back: outcome.fell_back,
                stale_cost: outcome.stale_cost,
                new_cost: outcome.new_cost,
            });
            self.flight.emit(
                e as u64,
                self.start_seq,
                "plan.replan",
                &[
                    ("divergence", divergence.into()),
                    ("adopted", outcome.adopted.into()),
                    ("truncated", outcome.truncated.into()),
                    ("fell_back", outcome.fell_back.into()),
                    ("stale_cost", outcome.stale_cost.into()),
                    ("new_cost", outcome.new_cost.into()),
                ],
            );
            // Either way the monitor is re-armed with the window's
            // estimates — they are the basestation's current belief.
            st.monitor.reset(outcome.est_selectivities.clone());
            if outcome.adopted {
                self.replan_adopt_c.incr(1);
                self.plans.push(outcome.planned);
                self.cur = self.plans.len() - 1;
                // Every mote now lags; re-dissemination starts at the
                // top of the next epoch. Journal the adoption so a
                // crash restores this version, not the genesis plan.
                if let Some(jr) = self.crash.as_mut().and_then(|c| c.journal.as_mut()) {
                    let p = &self.plans[self.cur];
                    jr.append(&WalRecord::PlanAdopted {
                        plan: PlanRecord {
                            version: self.cur as u64,
                            wire: p.wire.clone(),
                            expected_cost: p.expected_cost,
                            objective: p.objective,
                        },
                        est_selectivities: outcome.est_selectivities,
                    });
                }
            }
        }
    }

    /// Journals the epoch boundary and writes a snapshot when the
    /// checkpoint cadence is due.
    fn journal_epoch_end(&mut self, e: usize) {
        let Some(cr) = self.crash.as_mut() else { return };
        let Some(journal) = cr.journal.as_mut() else { return };
        journal.append(&WalRecord::EpochEnd { epoch: e as u64 });
        let every = cr.cfg.checkpoint_every;
        if every == 0 || !(e + 1).is_multiple_of(every) {
            return;
        }
        let p = &self.plans[self.cur];
        let cp = BasestationCheckpoint {
            epoch: e as u64,
            last_seq: journal.folded_seq(),
            plan: PlanRecord {
                version: self.cur as u64,
                wire: p.wire.clone(),
                expected_cost: p.expected_cost,
                objective: p.objective,
            },
            drift: self.adaptive.as_ref().map(|st| (st.cfg.drift, st.monitor.state())),
            window: self.adaptive.as_ref().map(|st| st.window.state()),
            mask_cache: self.hist_est.as_ref().and_then(|est| est.cached_masks()),
            ledgers: self
                .motes
                .iter()
                .map(|m| {
                    let l = m.ledger();
                    [l.sensing_uj, l.board_uj, l.radio_tx_uj, l.radio_rx_uj]
                })
                .collect(),
        };
        let last_seq = cp.last_seq;
        if journal.write_snapshot(&cp) {
            cr.checkpoints_written += 1;
            cr.counters.checkpoints.incr(1);
            self.flight.emit(
                e as u64,
                self.start_seq,
                "recovery.checkpoint",
                &[("last_seq", last_seq.into()), ("plan_version", self.cur.into())],
            );
        }
    }

    /// Whether a crash is injected at the start of epoch `e`: scheduled
    /// explicitly, or drawn from the seeded crash stream.
    fn crash_scheduled(&self, e: usize) -> bool {
        let Some(cr) = &self.crash else { return false };
        cr.cfg.crash_epochs.contains(&e)
            || (cr.cfg.crash_rate > 0.0
                && self.faults.roll(FaultStream::Crash, 0, e, 0, 0) < cr.cfg.crash_rate)
    }

    /// Kills and restarts the basestation: wipes its process memory
    /// (fleet beliefs, monitor, window, warm estimator, current plan),
    /// then rebuilds from the checkpoint directory — newest valid
    /// snapshot, idempotent WAL replay beyond it, genesis cold start
    /// when nothing validates. Mote-side state (`mote_has`, energy
    /// ledgers, pending piggyback counters) survives untouched: those
    /// live in the field, not in the crashed process.
    fn crash_and_recover(&mut self, e: usize) {
        let down_seq = self.flight.emit(e as u64, self.start_seq, "crash.down", &[]);
        let Some(cr) = self.crash.as_mut() else { return };
        cr.crashes += 1;
        cr.counters.attempted.incr(1);
        for v in self.bs_known.iter_mut() {
            *v = None;
        }
        let recovered = match cr.journal.as_mut() {
            Some(j) => j.recover(),
            None => RecoveredState::genesis(),
        };
        let (rec_cold, rec_corrupt, rec_replayed, rec_scanned) = (
            recovered.cold_start,
            recovered.corrupt_snapshots,
            recovered.replayed.len(),
            recovered.snapshots_scanned,
        );
        let rec_cp_epoch = recovered.checkpoint.as_ref().map(|cp| cp.epoch);
        cr.corrupt_snapshots += recovered.corrupt_snapshots;
        cr.counters.corrupt.incr(recovered.corrupt_snapshots as u64);
        if recovered.cold_start {
            cr.cold_starts += 1;
            cr.counters.cold_start.incr(1);
        }
        cr.wal_replayed += recovered.replayed.len();
        cr.counters.wal_replayed.incr(recovered.replayed.len() as u64);

        // Plan version from the checkpoint, genesis otherwise. Clamped
        // defensively: a version beyond what this run ever disseminated
        // cannot index the plan table.
        self.cur = recovered
            .checkpoint
            .as_ref()
            .map(|cp| (cp.plan.version as usize).min(self.plans.len() - 1))
            .unwrap_or(0);

        // Rebuild the history estimator the restarted basestation
        // needs, seeding its mask cache from the checkpoint when it
        // matches this query — recovery then skips the full dataset
        // pass the cold path would re-pay.
        if let (Some(est), Some(st)) = (self.hist_est.as_mut(), self.adaptive.as_ref()) {
            *est = CountingEstimator::with_ranges(st.bs.history(), Ranges::root(self.schema));
            if let Some((q, masks)) =
                recovered.checkpoint.as_ref().and_then(|cp| cp.mask_cache.clone())
            {
                if &q == self.query && est.seed_masks(q, masks) {
                    cr.counters.masks_seeded.incr(1);
                }
            }
        }

        // Monitor and window: checkpoint state when it validates and
        // matches this query's shape, genesis otherwise. The pending
        // piggyback buffers are mote-side and survive as-is.
        if let Some(st) = self.adaptive.as_mut() {
            let from_cp = recovered
                .checkpoint
                .as_ref()
                .and_then(|cp| cp.drift.clone())
                .and_then(|(cfg, state)| DriftMonitor::from_state(state, cfg).ok())
                .filter(|m| m.len() == self.query.len());
            st.monitor = match from_cp {
                Some(m) => m,
                None => {
                    let est = self
                        .hist_est
                        .as_ref()
                        .expect("crashy adaptive runs hold a history estimator");
                    DriftMonitor::new(estimated_selectivities(self.query, est), st.cfg.drift)
                        .expect("a non-empty query always arms a monitor")
                }
            };
            st.window = recovered
                .checkpoint
                .as_ref()
                .and_then(|cp| cp.window.clone())
                .filter(|w| w.width == self.schema.len())
                .and_then(|w| SlidingWindow::from_state(w).ok())
                .unwrap_or_else(|| SlidingWindow::new(self.schema, st.cfg.window.max(1)));
        }

        // Fold the WAL tail back in, in order. Every record is
        // shape-checked — a checksum collision on hostile bytes must
        // degrade to a skipped record, never an out-of-bounds panic.
        for r in recovered.replayed {
            match r {
                WalRecord::Observe { pred, evaluated, passed } => {
                    if let Some(st) = self.adaptive.as_mut() {
                        let j = pred as usize;
                        if j < self.query.len() && passed <= evaluated {
                            st.monitor.observe_counts(j, evaluated, passed);
                        }
                    }
                }
                WalRecord::WindowPush { row } => {
                    if let Some(st) = self.adaptive.as_mut() {
                        if row.len() == self.schema.len() {
                            st.window.push(row);
                        }
                    }
                }
                WalRecord::PlanAdopted { plan, est_selectivities } => {
                    self.cur = (plan.version as usize).min(self.plans.len() - 1);
                    if let Some(st) = self.adaptive.as_mut() {
                        if est_selectivities.len() == self.query.len() {
                            st.monitor.reset(est_selectivities);
                        }
                    }
                }
                // Serve records in a single-query directory are stale
                // bytes from another run flavor: shape-checked, skipped.
                WalRecord::EpochEnd { .. }
                | WalRecord::ServeAdmit { .. }
                | WalRecord::ServeComplete { .. } => {}
            }
        }
        self.flight.emit(
            e as u64,
            down_seq,
            "crash.recover",
            &[
                ("cold_start", rec_cold.into()),
                ("plan_version", self.cur.into()),
                ("wal_replayed", rec_replayed.into()),
                ("corrupt_snapshots", rec_corrupt.into()),
                ("snapshots_scanned", rec_scanned.into()),
                (
                    "checkpoint_epoch",
                    rec_cp_epoch.map(i64::try_from).and_then(Result::ok).unwrap_or(-1).into(),
                ),
            ],
        );
    }

    /// Fleet energy total in mote-index order — the vectorized path
    /// sums the same per-mote values in the same order, so per-epoch
    /// ticks match bitwise across exec modes.
    fn fleet_total_uj(&self) -> f64 {
        self.motes.iter().fold(0.0, |acc, m| acc + m.ledger().total_uj())
    }

    /// Emits the per-epoch `epoch.tick` time-series event and resets
    /// the epoch accumulators. No wall clock anywhere: every field is
    /// a deterministic function of the seeded run.
    fn epoch_tick(&mut self, e: usize) {
        if !self.flight.enabled() {
            return;
        }
        let fleet = self.fleet_total_uj();
        let mut fields: Vec<(String, TraceValue)> = vec![
            ("tuples".to_string(), self.ep_tuples.into()),
            ("results".to_string(), self.ep_results.into()),
            ("acquisitions".to_string(), self.ep_acq.into()),
            ("energy_uj".to_string(), fleet.into()),
            ("denergy_uj".to_string(), (fleet - self.last_energy).into()),
        ];
        for m in self.motes.iter() {
            fields.push((format!("mote{}_uj", m.id()), m.ledger().total_uj().into()));
        }
        if let Some(st) = &self.adaptive {
            fields.push(("drift".to_string(), st.monitor.max_divergence().into()));
            for j in 0..self.query.len() {
                fields.push((format!("p{j}_est"), st.monitor.estimated(j).into()));
                if let Some(a) = st.monitor.actual(j) {
                    fields.push((format!("p{j}_act"), a.into()));
                }
            }
        }
        self.flight.emit_owned(e as u64, self.start_seq, "epoch.tick", fields);
        self.last_energy = fleet;
        self.ep_tuples = 0;
        self.ep_results = 0;
        self.ep_acq = 0;
    }

    /// Total radio receive energy across the fleet — used to attribute
    /// the recovery re-dissemination tax.
    fn mote_rx_total(&self) -> f64 {
        self.motes.iter().map(|m| m.ledger().radio_rx_uj).sum()
    }

    /// Emits per-mote gauges and assembles the final report.
    fn finish(&mut self, epochs: usize) -> FaultReport {
        let per_mote: Vec<EnergyLedger> = self.motes.iter().map(|m| *m.ledger()).collect();
        if self.rec.enabled() {
            for (m, l) in self.motes.iter().zip(&per_mote) {
                let id = m.id();
                self.rec.gauge(&format!("sensornet.mote{id}.sensing_uj"), l.sensing_uj);
                self.rec
                    .gauge(&format!("sensornet.mote{id}.radio_uj"), l.radio_tx_uj + l.radio_rx_uj);
                self.rec.gauge(&format!("sensornet.mote{id}.total_uj"), l.total_uj());
            }
        }
        self.flight.emit(
            epochs as u64,
            self.start_seq,
            "sim.end",
            &[
                ("tuples", self.tuples.into()),
                ("results", self.results.into()),
                ("all_correct", self.all_correct.into()),
            ],
        );
        FaultReport {
            sim: SimReport::assemble(epochs, self.tuples, self.results, self.all_correct, per_mote),
            delivered_results: self.delivered_results,
            lost_results: self.lost_results,
            aborted_tuples: self.aborted_tuples,
            offline_epochs: self.offline_epochs,
            undisseminated_epochs: self.undisseminated_epochs,
            samples_delivered: self.samples_delivered,
            bs_tx_uj: self.bs_tx_uj,
            replans: std::mem::take(&mut self.replans),
        }
    }
}

/// Splits a flat multi-mote trace (one row per epoch, whole-network
/// schema — the Garden layout) into per-mote traces is not needed: in
/// the Garden model every mote evaluates the *network-wide* tuple, so
/// each "mote" is handed the same epoch rows. This helper instead builds
/// a fleet of `n` motes that all observe the given trace.
pub fn fleet_from_trace(trace: &Dataset, n: u16) -> Vec<Mote> {
    (0..n).map(|id| Mote::new(id, trace.clone())).collect()
}

/// Like [`run_simulation`] but over a multihop collection tree:
/// dissemination floods down the tree (interior motes forward the plan)
/// and every result climbs hop by hop, charging each ancestor a relay.
/// Returns the report plus the basestation's own transmit energy.
pub fn run_simulation_multihop(
    schema: &Schema,
    query: &Query,
    planned: &PlannedQuery,
    motes: &mut [Mote],
    topo: &crate::topology::Topology,
    model: &EnergyModel,
    epochs: usize,
) -> (SimReport, f64) {
    assert_eq!(motes.len(), topo.len());
    let result_bytes = result_packet_bytes(schema, query);
    // Dissemination down the tree.
    let mut ledgers: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    let bs_tx = topo.charge_dissemination(planned.wire.len(), model, &mut ledgers);

    let mut results = 0usize;
    let mut tuples = 0usize;
    let mut all_correct = true;
    for e in 0..epochs {
        for (mi, m) in motes.iter_mut().enumerate() {
            if e >= m.epochs() {
                continue;
            }
            tuples += 1;
            let out = {
                let mut src = m.epoch_source(e, schema, model);
                execute_wire(&planned.wire, query, schema, &mut src)
                    .expect("basestation-produced wire plans are well-formed")
            };
            let truth = query.eval_with(|a| m.peek(e, a));
            all_correct &= out.verdict == truth;
            if out.verdict {
                results += 1;
                topo.charge_result(mi, result_bytes, model, &mut ledgers);
            }
        }
    }
    // Merge sensing/board energy (tracked inside each mote) with the
    // radio energy tracked by the topology layer.
    for (m, topo_ledger) in motes.iter_mut().zip(&ledgers) {
        let l = m.ledger_mut();
        l.radio_rx_uj = topo_ledger.radio_rx_uj;
        l.radio_tx_uj = topo_ledger.radio_tx_uj;
    }
    let per_mote: Vec<EnergyLedger> = motes.iter().map(|m| *m.ledger()).collect();
    let report = SimReport::assemble(epochs, tuples, results, all_correct, per_mote);
    (report, bs_tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basestation::{Basestation, PlannerChoice};
    use acqp_core::{Attribute, Pred};

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 100.0),
            Attribute::new("b", 2, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..400u16 {
            let t = i % 2;
            let a = if i % 10 == 0 { 1 - t } else { t };
            let b = if i % 12 == 0 { t } else { 1 - t };
            rows.push(vec![a, b, t]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn simulation_accounts_and_validates() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();

        let mut motes = fleet_from_trace(&live, 3);
        let report = run_simulation(
            &schema,
            &query,
            &planned,
            &mut motes,
            &EnergyModel::mica_like(),
            live.len(),
        );
        assert!(report.all_correct);
        assert_eq!(report.tuples, 3 * live.len());
        // Dissemination was charged to every mote.
        assert!(report.network.radio_rx_uj > 0.0);
        assert_eq!(report.per_mote.len(), 3);
        // Sensing energy per tuple sits between the single- and
        // two-sensor cost.
        assert!(report.sensing_uj_per_tuple >= 1.0);
        assert!(report.sensing_uj_per_tuple <= 201.0);
    }

    #[test]
    fn recorded_simulation_reports_network_metrics() {
        use acqp_obs::{NoopSink, Recorder};
        use std::sync::Arc;

        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let mut motes = fleet_from_trace(&live, 2);
        let rec = Recorder::new(Arc::new(NoopSink));
        let report = run_simulation_recorded(
            &schema,
            &query,
            &planned,
            &mut motes,
            &EnergyModel::mica_like(),
            live.len(),
            &rec,
        );
        let snap = rec.drain();
        assert_eq!(snap.counter("sensornet.tuples"), report.tuples as u64);
        assert_eq!(snap.counter("sensornet.results"), report.results as u64);
        // Radio messages = one dissemination rx per mote + one tx per result.
        assert_eq!(snap.counter("sensornet.radio.msgs"), 2 + report.results as u64);
        assert_eq!(snap.hists["sensornet.acquisitions_per_tuple"].1, report.tuples as u64);
        for (m, l) in motes.iter().zip(&report.per_mote) {
            let g = snap.value(&format!("sensornet.mote{}.total_uj", m.id()));
            assert!((g - l.total_uj()).abs() < 1e-9);
        }
        assert_eq!(snap.spans["sensornet.simulate"].count, 1);
        // The lossless path never touches the fault taxonomy beyond
        // first-attempt successes.
        assert_eq!(snap.counter("sensornet.fault.result.lost"), 0);
        assert_eq!(snap.counter("sensornet.fault.diss.timeouts"), 0);
    }

    #[test]
    fn conditional_plan_saves_network_energy_vs_naive() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let model = EnergyModel::mica_like();

        let run = |choice: PlannerChoice| {
            let planned = bs.plan_query(&query, choice, 0.0).unwrap();
            let mut motes = fleet_from_trace(&live, 2);
            run_simulation(&schema, &query, &planned, &mut motes, &model, live.len())
        };
        let naive = run(PlannerChoice::Naive);
        let cond = run(PlannerChoice::Heuristic(4));
        assert!(naive.all_correct && cond.all_correct);
        assert!(
            cond.network.sensing_uj < naive.network.sensing_uj,
            "conditional {} vs naive {}",
            cond.network.sensing_uj,
            naive.network.sensing_uj
        );
    }

    #[test]
    fn board_powerup_charged_in_simulation() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let model = EnergyModel::mica_like().with_board(vec![0, 1], 300.0);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let mut motes = fleet_from_trace(&live, 1);
        let report = run_simulation(&schema, &query, &planned, &mut motes, &model, live.len());
        assert!(report.network.board_uj > 0.0);
        // At most one power-up per tuple.
        assert!(report.network.board_uj <= 300.0 * report.tuples as f64);
    }

    #[test]
    fn result_packet_scales_with_selected_attribute_widths() {
        let (schema, _, query) = setup();
        // Two selected attributes with 2-value domains: 2-byte header +
        // 1 byte each.
        assert_eq!(result_packet_bytes(&schema, &query), 4);
        // A wide-domain attribute costs two bytes on air.
        let wide = Schema::new(vec![Attribute::new("w", 1000, 10.0), Attribute::new("n", 4, 10.0)])
            .unwrap();
        let q1 = Query::new(vec![Pred::in_range(0, 0, 500)]).unwrap();
        assert_eq!(result_packet_bytes(&wide, &q1), 2 + 2);
        let q2 = Query::new(vec![Pred::in_range(0, 0, 500), Pred::in_range(1, 0, 1)]).unwrap();
        assert_eq!(result_packet_bytes(&wide, &q2), 2 + 2 + 1);
        // Sample packets carry the whole schema plus counter deltas.
        assert_eq!(sample_packet_bytes(&wide, &q2), 2 + 3 + 2 * 2);
    }

    #[test]
    fn result_radio_energy_uses_computed_packet_size() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let model = EnergyModel::mica_like();
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let mut motes = fleet_from_trace(&live, 1);
        let report = run_simulation(&schema, &query, &planned, &mut motes, &model, live.len());
        let expected_tx = report.results as f64
            * result_packet_bytes(&schema, &query) as f64
            * model.radio_tx_uj_per_byte;
        assert!(report.results > 0);
        assert!((report.network.radio_tx_uj - expected_tx).abs() < 1e-9);
    }

    #[test]
    fn degenerate_configs_report_zero_not_nan() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let model = EnergyModel::mica_like();

        // Zero epochs: dissemination still happens, no tuples run.
        let mut motes = fleet_from_trace(&live, 2);
        let r = run_simulation(&schema, &query, &planned, &mut motes, &model, 0);
        assert_eq!(r.tuples, 0);
        assert_eq!(r.sensing_uj_per_tuple, 0.0);
        assert!(r.sensing_uj_per_tuple.is_finite());
        assert!(r.network.radio_rx_uj > 0.0, "plan was still disseminated");

        // Empty fleet: nothing at all.
        let mut none: Vec<Mote> = Vec::new();
        let r = run_simulation(&schema, &query, &planned, &mut none, &model, 50);
        assert_eq!(r.tuples, 0);
        assert_eq!(r.sensing_uj_per_tuple, 0.0);
        assert!(r.sensing_uj_per_tuple.is_finite());

        // Same edges through the multihop path.
        let topo = crate::topology::Topology::star(2);
        let mut motes = fleet_from_trace(&live, 2);
        let (r, _) =
            run_simulation_multihop(&schema, &query, &planned, &mut motes, &topo, &model, 0);
        assert_eq!(r.sensing_uj_per_tuple, 0.0);
        assert!(r.sensing_uj_per_tuple.is_finite());
    }

    #[test]
    fn zero_loss_faulty_run_is_bitwise_identical_to_lossless() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like();

        let mut base_motes = fleet_from_trace(&live, 3);
        let base = run_simulation(&schema, &query, &planned, &mut base_motes, &model, live.len());

        let mut faulty_motes = fleet_from_trace(&live, 3);
        let faults = FaultModel::lossy(0xDEAD_BEEF, 0.0);
        let rep = run_simulation_faulty(
            &schema,
            &query,
            &planned,
            &mut faulty_motes,
            &model,
            live.len(),
            &faults,
            &Recorder::disabled(),
        );
        assert_eq!(rep.sim.tuples, base.tuples);
        assert_eq!(rep.sim.results, base.results);
        assert_eq!(rep.sim.all_correct, base.all_correct);
        assert_eq!(rep.sim.per_mote, base.per_mote, "energy must match to the bit");
        assert_eq!(rep.sim.sensing_uj_per_tuple.to_bits(), base.sensing_uj_per_tuple.to_bits());
        assert_eq!(rep.delivered_results, rep.sim.results);
        assert_eq!(rep.lost_results, 0);
        assert_eq!(rep.delivery_rate(), 1.0);
    }

    #[test]
    fn vectorized_sim_is_bitwise_identical_to_scalar() {
        use acqp_obs::{NoopSink, Recorder};
        use std::sync::Arc;

        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like().with_board(vec![0, 1], 500.0);

        let run = |mode: acqp_core::ExecMode| {
            let mut motes = fleet_from_trace(&live, 3);
            let rec = Recorder::new(Arc::new(NoopSink));
            let rep = run_simulation_mode(
                &schema,
                &query,
                &planned,
                &mut motes,
                &model,
                live.len(),
                mode,
                &rec,
            );
            (rep, rec.drain())
        };
        let (base, base_snap) = run(acqp_core::ExecMode::Scalar);
        let (vec_rep, vec_snap) = run(acqp_core::ExecMode::Vectorized);

        assert_eq!(vec_rep.tuples, base.tuples);
        assert_eq!(vec_rep.results, base.results);
        assert_eq!(vec_rep.all_correct, base.all_correct);
        assert_eq!(vec_rep.per_mote, base.per_mote, "ledgers must match to the bit");
        assert_eq!(vec_rep.sensing_uj_per_tuple.to_bits(), base.sensing_uj_per_tuple.to_bits());

        assert_eq!(vec_snap.counters, base_snap.counters);
        assert_eq!(vec_snap.hists, base_snap.hists);
        let base_vals: Vec<(&String, u64)> =
            base_snap.values.iter().map(|(k, v)| (k, v.to_bits())).collect();
        let vec_vals: Vec<(&String, u64)> =
            vec_snap.values.iter().map(|(k, v)| (k, v.to_bits())).collect();
        assert_eq!(vec_vals, base_vals, "gauges must match to the bit");
        let spans = |s: &acqp_obs::Snapshot| {
            s.spans.iter().map(|(k, v)| (k.clone(), v.count)).collect::<Vec<_>>()
        };
        assert_eq!(spans(&vec_snap), spans(&base_snap));
    }

    #[test]
    fn lossy_run_is_deterministic_and_loses_results() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let faults = FaultModel::lossy(7, 0.4);

        let run = || {
            let mut motes = fleet_from_trace(&live, 3);
            run_simulation_faulty(
                &schema,
                &query,
                &planned,
                &mut motes,
                &model,
                live.len(),
                &faults,
                &Recorder::disabled(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.sim.per_mote, b.sim.per_mote);
        assert_eq!(a.delivered_results, b.delivered_results);
        assert_eq!(a.lost_results, b.lost_results);
        assert!(a.lost_results > 0, "40% loss with 4 attempts must lose something");
        assert!(a.delivery_rate() < 1.0);
        // Retransmissions cost strictly more tx energy than a lossless
        // run of the same plan.
        let mut lossless = fleet_from_trace(&live, 3);
        let base = run_simulation(&schema, &query, &planned, &mut lossless, &model, live.len());
        assert!(a.sim.network.radio_tx_uj > base.network.radio_tx_uj);
    }

    #[test]
    fn dropout_epochs_do_not_execute_or_charge() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let epochs = live.len();
        // Mote 1 is down for 10 epochs mid-run.
        let faults = FaultModel::lossy(3, 0.0).with_dropout(1, 20, 30);
        let mut motes = fleet_from_trace(&live, 2);
        let rep = run_simulation_faulty(
            &schema,
            &query,
            &planned,
            &mut motes,
            &model,
            epochs,
            &faults,
            &Recorder::disabled(),
        );
        assert_eq!(rep.offline_epochs, 10);
        assert_eq!(rep.sim.tuples, 2 * epochs - 10);
        assert!(rep.sim.all_correct);
        // The dropped mote spent strictly less sensing energy.
        assert!(rep.sim.per_mote[1].sensing_uj < rep.sim.per_mote[0].sensing_uj);
    }

    #[test]
    fn sensing_failures_abort_tuples_but_charge_retries() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Naive, 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let faults = FaultModel::lossy(11, 0.0).with_sensing_failures(0.2).with_max_attempts(2);
        let mut motes = fleet_from_trace(&live, 2);
        let rep = run_simulation_faulty(
            &schema,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            &faults,
            &Recorder::disabled(),
        );
        assert!(rep.aborted_tuples > 0, "20% failure with cap 2 must abort some tuples");
        // Verdict checking skips aborted tuples, so the run stays correct.
        assert!(rep.sim.all_correct);
        // Failed reads still drew sensor power: more sensing energy
        // than the lossless run.
        let mut lossless = fleet_from_trace(&live, 2);
        let base = run_simulation(&schema, &query, &planned, &mut lossless, &model, live.len());
        assert!(rep.sim.network.sensing_uj > base.network.sensing_uj);
    }

    #[test]
    fn adaptive_replans_when_distribution_flips() {
        use acqp_obs::{NoopSink, Recorder};
        use std::sync::Arc;

        let (schema, _, query) = setup();
        // History: pred on `a` passes 90% of tuples, pred on `b` only
        // 10% — the planner fronts `b` for cheap rejections.
        let mut hist_rows = Vec::new();
        for i in 0..200u16 {
            let (a, b) = (u16::from(i % 10 != 0), u16::from(i % 10 == 0));
            hist_rows.push(vec![a, b, i % 2]);
        }
        let hist = Dataset::from_rows(&schema, hist_rows).unwrap();
        // Live: the selectivities flipped — `b` now passes 90% and the
        // stale b-first plan acquires both sensors almost every epoch.
        let mut live_rows = Vec::new();
        for i in 0..240u16 {
            let (a, b) = (u16::from(i % 10 == 0), u16::from(i % 10 != 0));
            live_rows.push(vec![a, b, i % 2]);
        }
        let live = Dataset::from_rows(&schema, live_rows).unwrap();

        let bs = Basestation::new(schema.clone(), &hist);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let rec = Recorder::new(Arc::new(NoopSink));
        let cfg = AdaptiveConfig {
            drift: DriftConfig { threshold: 0.2, min_samples: 16 },
            check_every: 4,
            sample_every: 2,
            window: 64,
            min_window: 8,
            ..AdaptiveConfig::default()
        };
        let mut motes = fleet_from_trace(&live, 2);
        let rep = run_simulation_adaptive(
            &bs,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            &FaultModel::lossy(5, 0.05),
            &cfg,
            &rec,
        )
        .unwrap();
        assert!(rep.sim.all_correct, "re-planning must never corrupt verdicts");
        assert!(!rep.replans.is_empty(), "flipped correlation must trigger a re-plan");
        let adopted: Vec<_> = rep.replans.iter().filter(|r| r.adopted).collect();
        assert!(!adopted.is_empty(), "a strictly cheaper plan exists and must be adopted");
        for r in &rep.replans {
            if r.adopted {
                assert!(r.new_cost < r.stale_cost);
            }
        }
        let snap = rec.drain();
        assert_eq!(snap.counter("sensornet.replan.triggered"), rep.replans.len() as u64);
        assert_eq!(snap.counter("sensornet.replan.adopted"), adopted.len() as u64);
        assert!(rep.samples_delivered > 0);
    }

    #[test]
    fn crashes_recover_and_charge_rediss_energy() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let faults = FaultModel::lossy(21, 0.0);
        let dir = std::env::temp_dir().join("acqp_sim_crash_test");
        std::fs::remove_dir_all(&dir).ok();

        let crash = CrashConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 8,
            crash_epochs: vec![10, 30],
            crash_rate: 0.0,
        };
        let mut motes = fleet_from_trace(&live, 3);
        let rep = run_simulation_crashy(
            &bs,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            &faults,
            None,
            &crash,
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(rep.crashes, 2);
        assert_eq!(rep.cold_starts, 0, "checkpoints were on disk for both crashes");
        assert!(rep.checkpoints_written > 0);
        assert!(rep.recovery_rediss_uj > 0.0, "recovery must re-pay dissemination radio");
        assert!(rep.fault.sim.all_correct, "crashes must never corrupt verdicts");
        // Same run without crashes: strictly less dissemination energy.
        std::fs::remove_dir_all(&dir).ok();
        let mut base_motes = fleet_from_trace(&live, 3);
        let base = run_simulation_faulty(
            &schema,
            &query,
            &planned,
            &mut base_motes,
            &model,
            live.len(),
            &faults,
            &Recorder::disabled(),
        );
        assert!(rep.fault.bs_tx_uj > base.bs_tx_uj);
        assert_eq!(rep.fault.sim.tuples, base.sim.tuples, "crashes cost energy, not tuples");
    }

    #[test]
    fn crash_without_persistence_cold_starts_to_genesis() {
        let (schema, data, query) = setup();
        let (train, live) = data.split_at(0.5);
        let bs = Basestation::new(schema.clone(), &train);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let crash = CrashConfig {
            checkpoint_dir: None,
            checkpoint_every: 0,
            crash_epochs: vec![5],
            crash_rate: 0.0,
        };
        let mut motes = fleet_from_trace(&live, 2);
        let rep = run_simulation_crashy(
            &bs,
            &query,
            &planned,
            &mut motes,
            &model,
            20,
            &FaultModel::none(),
            None,
            &crash,
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(rep.crashes, 1);
        assert_eq!(rep.cold_starts, 1, "no checkpoint directory means every crash is cold");
        assert_eq!(rep.checkpoints_written, 0);
        assert!(rep.fault.sim.all_correct);
    }
}
