//! Multihop collection trees.
//!
//! Real deployments route through a collection tree rooted at the
//! basestation (Fig. 4 shows multihop links). Plan dissemination floods
//! down the tree — every node receives the plan once and every interior
//! node forwards it — and results climb hop by hop back to the root, so
//! a deep mote's result costs every ancestor a relay. This makes plan
//! size ζ(P) and result *rate* first-class energy terms, sharpening the
//! §2.4 trade-off.

use crate::energy::{EnergyLedger, EnergyModel};

/// A collection tree over motes `0..n`; the basestation is a virtual
/// root above every depth-1 node.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Parent mote of each mote; `None` = direct link to the
    /// basestation (depth 1).
    parent: Vec<Option<usize>>,
    depth: Vec<u32>,
}

impl Topology {
    /// Builds from explicit parents, validating acyclicity.
    pub fn new(parent: Vec<Option<usize>>) -> Result<Self, &'static str> {
        let n = parent.len();
        let mut depth = vec![0u32; n];
        for (start, d) in depth.iter_mut().enumerate() {
            // Walk to the root, counting hops; bail on cycles.
            let mut hops = 1u32;
            let mut cur = start;
            while let Some(p) = parent[cur] {
                if p >= n {
                    return Err("parent out of range");
                }
                hops += 1;
                if hops as usize > n + 1 {
                    return Err("cycle in topology");
                }
                cur = p;
            }
            *d = hops;
        }
        Ok(Topology { parent, depth })
    }

    /// Every mote one hop from the basestation (the implicit topology of
    /// [`crate::sim::run_simulation`]).
    pub fn star(n: usize) -> Self {
        Topology { parent: vec![None; n], depth: vec![1; n] }
    }

    /// A chain: mote 0 at depth 1, mote `i` routed through mote `i−1`.
    pub fn line(n: usize) -> Self {
        let parent = (0..n).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        Topology { parent, depth: (1..=n as u32).collect() }
    }

    /// A balanced tree with the given fanout (mote 0.. filled level by
    /// level; the first `fanout` motes hang off the basestation).
    pub fn balanced(n: usize, fanout: usize) -> Self {
        let fanout = fanout.max(1);
        let parent: Vec<Option<usize>> =
            (0..n).map(|i| if i < fanout { None } else { Some(i / fanout - 1) }).collect();
        Self::new(parent).expect("balanced construction is acyclic")
    }

    /// Number of motes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for an empty network.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Hop count from mote `v` to the basestation.
    pub fn depth(&self, v: usize) -> u32 {
        self.depth[v]
    }

    /// Parent of `v` (None = basestation link).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Whether `v` forwards traffic for at least one child.
    pub fn is_interior(&self, v: usize) -> bool {
        self.parent.contains(&Some(v))
    }

    /// Charges the flood-dissemination of a `bytes`-long plan: every
    /// mote receives once; every interior mote retransmits once.
    /// Returns the basestation's own transmit energy.
    pub fn charge_dissemination(
        &self,
        bytes: usize,
        model: &EnergyModel,
        ledgers: &mut [EnergyLedger],
    ) -> f64 {
        debug_assert_eq!(ledgers.len(), self.len());
        for (v, l) in ledgers.iter_mut().enumerate() {
            l.radio_rx_uj += bytes as f64 * model.radio_rx_uj_per_byte;
            if self.is_interior(v) {
                l.radio_tx_uj += bytes as f64 * model.radio_tx_uj_per_byte;
            }
        }
        bytes as f64 * model.radio_tx_uj_per_byte
    }

    /// Charges one `bytes`-long result climbing from `origin` to the
    /// basestation: the origin transmits; each ancestor receives and
    /// retransmits.
    pub fn charge_result(
        &self,
        origin: usize,
        bytes: usize,
        model: &EnergyModel,
        ledgers: &mut [EnergyLedger],
    ) {
        let tx = bytes as f64 * model.radio_tx_uj_per_byte;
        let rx = bytes as f64 * model.radio_rx_uj_per_byte;
        ledgers[origin].radio_tx_uj += tx;
        let mut cur = origin;
        while let Some(p) = self.parent[cur] {
            ledgers[p].radio_rx_uj += rx;
            ledgers[p].radio_tx_uj += tx;
            cur = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_depths() {
        let star = Topology::star(4);
        assert!((0..4).all(|v| star.depth(v) == 1));
        assert!(!star.is_interior(0));

        let line = Topology::line(4);
        assert_eq!(line.depth(0), 1);
        assert_eq!(line.depth(3), 4);
        assert!(line.is_interior(0) && !line.is_interior(3));

        let tree = Topology::balanced(7, 2);
        assert_eq!(tree.depth(0), 1);
        assert_eq!(tree.depth(1), 1);
        assert_eq!(tree.depth(2), 2); // child of mote 0
        assert_eq!(tree.parent(2), Some(0));
        assert_eq!(tree.depth(6), 3);
    }

    #[test]
    fn rejects_cycles_and_bad_parents() {
        assert!(Topology::new(vec![Some(1), Some(0)]).is_err());
        assert!(Topology::new(vec![Some(5)]).is_err());
        assert!(Topology::new(vec![Some(0)]).is_err(), "self-loop");
    }

    #[test]
    fn dissemination_charges_interior_nodes_extra() {
        let t = Topology::line(3);
        let m = EnergyModel::mica_like();
        let mut l = vec![EnergyLedger::default(); 3];
        let bs_tx = t.charge_dissemination(100, &m, &mut l);
        assert_eq!(bs_tx, 100.0);
        // Every node rx; nodes 0 and 1 forward.
        for ledger in &l {
            assert_eq!(ledger.radio_rx_uj, 75.0);
        }
        assert_eq!(l[0].radio_tx_uj, 100.0);
        assert_eq!(l[1].radio_tx_uj, 100.0);
        assert_eq!(l[2].radio_tx_uj, 0.0);
    }

    #[test]
    fn result_relay_charges_every_ancestor() {
        let t = Topology::line(3);
        let m = EnergyModel::mica_like();
        let mut l = vec![EnergyLedger::default(); 3];
        t.charge_result(2, 8, &m, &mut l);
        assert_eq!(l[2].radio_tx_uj, 8.0);
        assert_eq!(l[1].radio_rx_uj, 6.0);
        assert_eq!(l[1].radio_tx_uj, 8.0);
        assert_eq!(l[0].radio_rx_uj, 6.0);
        assert_eq!(l[0].radio_tx_uj, 8.0);
        // Depth-1 origin touches nobody else.
        let mut l2 = vec![EnergyLedger::default(); 3];
        t.charge_result(0, 8, &m, &mut l2);
        assert_eq!(l2[0].radio_tx_uj, 8.0);
        assert_eq!(l2[1].radio_tx_uj, 0.0);
    }
}
