//! Flight-recorder determinism and transparency, end to end.
//!
//! Three properties from DESIGN.md §13:
//!  1. Fixed inputs ⇒ bitwise-identical event logs across repeated runs
//!     *and* across `ExecMode::Scalar` / `ExecMode::Vectorized` (the
//!     exporters are compared byte for byte).
//!  2. A disabled flight recorder is bitwise-transparent: simulation
//!     reports and energy ledgers match a run with no recorder at all.
//!  3. Lossy runs with a fixed fault seed replay to the same trace.

use acqp_core::prelude::*;
use acqp_obs::{FlightRecorder, Recorder};
use acqp_sensornet::sim::fleet_from_trace;
use acqp_sensornet::{
    run_simulation_faulty, run_simulation_mode, Basestation, EnergyModel, FaultModel, PlannerChoice,
};
use proptest::prelude::*;

/// A small deterministic workload parameterised by row-formula divisors
/// (a stand-in for a dataset seed — no RNG, so proptest shrinking stays
/// meaningful).
fn setup(div_a: u16, div_b: u16, rows: usize) -> (Schema, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 4, 100.0),
        Attribute::new("b", 4, 100.0),
        Attribute::new("t", 4, 1.0),
    ])
    .unwrap();
    let rows: Vec<Vec<u16>> =
        (0..rows as u16).map(|i| vec![(i / div_a) % 4, (i / div_b) % 4, i % 4]).collect();
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 2, 3)]).unwrap();
    (schema, data, query)
}

/// Runs the lossless simulation in `mode` with a fresh flight recorder
/// and returns all three export formats plus the report.
fn fly(
    schema: &Schema,
    query: &Query,
    live: &Dataset,
    motes: u16,
    mode: ExecMode,
) -> (String, String, String, acqp_sensornet::SimReport) {
    let bs = Basestation::new(schema.clone(), live);
    let planned = bs.plan_query(query, PlannerChoice::Heuristic(3), 0.0).unwrap();
    let rec = Recorder::disabled().with_flight(FlightRecorder::new(1 << 14));
    let mut fleet = fleet_from_trace(live, motes);
    let rep = run_simulation_mode(
        schema,
        query,
        &planned,
        &mut fleet,
        &EnergyModel::mica_like(),
        live.len(),
        mode,
        &rec,
    );
    let flight = rec.flight();
    (flight.to_chrome_json(), flight.to_epoch_jsonl(), flight.to_timeline(), rep)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Property 1: fixed inputs ⇒ byte-identical exports, run to run
    /// and scalar vs vectorized.
    #[test]
    fn fixed_inputs_replay_to_identical_traces(
        div_a in 2u16..9,
        div_b in 2u16..9,
        motes in 1u16..4,
        rows in 40usize..120,
    ) {
        let (schema, data, query) = setup(div_a, div_b, rows);
        let (chrome1, jsonl1, text1, rep1) = fly(&schema, &query, &data, motes, ExecMode::Scalar);
        let (chrome2, jsonl2, text2, rep2) = fly(&schema, &query, &data, motes, ExecMode::Scalar);
        prop_assert_eq!(&chrome1, &chrome2, "same-seed scalar traces diverged");
        prop_assert_eq!(&jsonl1, &jsonl2);
        prop_assert_eq!(&text1, &text2);
        prop_assert_eq!(rep1.results, rep2.results);

        let (chrome_v, jsonl_v, text_v, rep_v) =
            fly(&schema, &query, &data, motes, ExecMode::Vectorized);
        prop_assert_eq!(&chrome1, &chrome_v, "scalar and vectorized traces diverged");
        prop_assert_eq!(&jsonl1, &jsonl_v);
        prop_assert_eq!(&text1, &text_v);
        prop_assert_eq!(rep1.results, rep_v.results);
        prop_assert_eq!(
            rep1.network.total_uj().to_bits(),
            rep_v.network.total_uj().to_bits(),
            "energy must stay bitwise identical across exec modes"
        );
    }

    /// Property 2: a disabled flight recorder never perturbs the run —
    /// reports are bitwise-equal to the recorder-free entry points.
    #[test]
    fn disabled_recorder_is_bitwise_transparent(
        div_a in 2u16..9,
        motes in 1u16..4,
        rows in 40usize..120,
    ) {
        let (schema, data, query) = setup(div_a, 3, rows);
        let bs = Basestation::new(schema.clone(), &data);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(3), 0.0).unwrap();
        let model = EnergyModel::mica_like();

        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            let mut bare_fleet = fleet_from_trace(&data, motes);
            let bare = run_simulation_mode(
                &schema, &query, &planned, &mut bare_fleet, &model, data.len(), mode,
                &Recorder::disabled(),
            );
            let rec = Recorder::disabled().with_flight(FlightRecorder::disabled());
            let mut fleet = fleet_from_trace(&data, motes);
            let flown = run_simulation_mode(
                &schema, &query, &planned, &mut fleet, &model, data.len(), mode, &rec,
            );
            prop_assert_eq!(rec.flight().emitted(), 0, "disabled ring must swallow emits");
            prop_assert_eq!(bare.tuples, flown.tuples);
            prop_assert_eq!(bare.results, flown.results);
            prop_assert_eq!(bare.network.total_uj().to_bits(), flown.network.total_uj().to_bits());
            for (a, b) in bare_fleet.iter().zip(&fleet) {
                prop_assert_eq!(a.ledger().total_uj().to_bits(), b.ledger().total_uj().to_bits());
            }
        }
    }

    /// Property 3: a fixed fault seed replays the lossy engine — retry
    /// events and all — to the same byte-for-byte trace.
    #[test]
    fn lossy_runs_replay_under_a_fixed_fault_seed(
        seed in 0u64..1000,
        loss_pct in 5u32..40,
        motes in 1u16..4,
    ) {
        let loss = loss_pct as f64 / 100.0;
        let (schema, data, query) = setup(5, 3, 90);
        let bs = Basestation::new(schema.clone(), &data);
        let planned = bs.plan_query(&query, PlannerChoice::Heuristic(3), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let faults = FaultModel::lossy(seed, loss);
        let mut traces = Vec::new();
        for _ in 0..2 {
            let rec = Recorder::disabled().with_flight(FlightRecorder::new(1 << 14));
            let mut fleet = fleet_from_trace(&data, motes);
            let rep = run_simulation_faulty(
                &schema, &query, &planned, &mut fleet, &model, data.len(), &faults, &rec,
            );
            prop_assert!(rep.sim.all_correct);
            traces.push(rec.flight().to_chrome_json());
        }
        prop_assert_eq!(&traces[0], &traces[1], "same fault seed must replay identically");
    }
}

/// Ring overflow on a real run is counted and surfaced, never silent.
#[test]
fn overflow_is_reported_in_exports() {
    let (schema, data, query) = setup(5, 3, 120);
    let bs = Basestation::new(schema.clone(), &data);
    let planned = bs.plan_query(&query, PlannerChoice::Heuristic(3), 0.0).unwrap();
    let rec = Recorder::disabled().with_flight(FlightRecorder::new(8));
    let mut fleet = fleet_from_trace(&data, 2);
    run_simulation_mode(
        &schema,
        &query,
        &planned,
        &mut fleet,
        &EnergyModel::mica_like(),
        data.len(),
        ExecMode::Scalar,
        &rec,
    );
    let flight = rec.flight();
    assert!(flight.dropped() > 0, "a cap of 8 must overflow on this run");
    assert_eq!(flight.len(), 8);
    assert!(flight.to_chrome_json().contains("trace.dropped"));
    assert!(flight.to_timeline().contains("trace.dropped"));
}
