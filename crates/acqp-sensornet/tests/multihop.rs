//! Integration tests for multihop simulation: topology shapes change
//! radio energy but never sensing energy or verdicts.

use acqp_core::prelude::*;
use acqp_sensornet::sim::fleet_from_trace;
use acqp_sensornet::{
    run_simulation, run_simulation_multihop, Basestation, EnergyModel, PlannerChoice, Topology,
};

fn setup() -> (Schema, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 4, 100.0),
        Attribute::new("b", 4, 100.0),
        Attribute::new("t", 4, 1.0),
    ])
    .unwrap();
    let rows: Vec<Vec<u16>> = (0..400u16).map(|i| vec![(i / 7) % 4, (i / 3) % 4, i % 4]).collect();
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 2, 3)]).unwrap();
    (schema, data, query)
}

#[test]
fn star_topology_matches_single_hop_simulation() {
    let (schema, data, query) = setup();
    let (history, live) = data.split_at(0.5);
    let bs = Basestation::new(schema.clone(), &history);
    let planned = bs.plan_query(&query, PlannerChoice::Heuristic(3), 0.0).unwrap();
    let model = EnergyModel::mica_like();

    let mut flat = fleet_from_trace(&live, 4);
    let flat_rep = run_simulation(&schema, &query, &planned, &mut flat, &model, live.len());

    let mut multi = fleet_from_trace(&live, 4);
    let topo = Topology::star(4);
    let (multi_rep, bs_tx) =
        run_simulation_multihop(&schema, &query, &planned, &mut multi, &topo, &model, live.len());
    assert!(flat_rep.all_correct && multi_rep.all_correct);
    assert_eq!(flat_rep.results, multi_rep.results);
    // Sensing identical; radio identical at depth 1 (no relays, no
    // interior forwards).
    assert!((flat_rep.network.sensing_uj - multi_rep.network.sensing_uj).abs() < 1e-9);
    assert!(
        (flat_rep.network.radio_rx_uj - multi_rep.network.radio_rx_uj).abs() < 1e-9,
        "star rx must match single-hop"
    );
    assert!(
        (flat_rep.network.radio_tx_uj - multi_rep.network.radio_tx_uj).abs() < 1e-9,
        "star tx must match single-hop"
    );
    assert!(bs_tx > 0.0);
}

#[test]
fn deeper_topologies_cost_more_radio_never_more_sensing() {
    let (schema, data, query) = setup();
    let (history, live) = data.split_at(0.5);
    let bs = Basestation::new(schema.clone(), &history);
    let planned = bs.plan_query(&query, PlannerChoice::Heuristic(3), 0.0).unwrap();
    let model = EnergyModel::mica_like();

    let run = |topo: Topology| {
        let mut motes = fleet_from_trace(&live, 6);
        let (rep, _) = run_simulation_multihop(
            &schema,
            &query,
            &planned,
            &mut motes,
            &topo,
            &model,
            live.len(),
        );
        assert!(rep.all_correct);
        rep
    };
    let star = run(Topology::star(6));
    let tree = run(Topology::balanced(6, 2));
    let line = run(Topology::line(6));
    assert!((star.network.sensing_uj - line.network.sensing_uj).abs() < 1e-9);
    let radio = |r: &acqp_sensornet::SimReport| r.network.radio_rx_uj + r.network.radio_tx_uj;
    assert!(radio(&star) < radio(&tree));
    assert!(radio(&tree) < radio(&line), "line tops the relay bill");
}

#[test]
fn relay_burden_lands_on_ancestors() {
    let (schema, data, query) = setup();
    let (history, live) = data.split_at(0.5);
    let bs = Basestation::new(schema.clone(), &history);
    let planned = bs.plan_query(&query, PlannerChoice::CorrSeq, 0.0).unwrap();
    let model = EnergyModel::mica_like();
    let mut motes = fleet_from_trace(&live, 4);
    let topo = Topology::line(4);
    let (rep, _) =
        run_simulation_multihop(&schema, &query, &planned, &mut motes, &topo, &model, live.len());
    // Mote 0 relays for everyone: strictly more radio than the leaf.
    let tx0 = rep.per_mote[0].radio_tx_uj;
    let tx3 = rep.per_mote[3].radio_tx_uj;
    assert!(tx0 > tx3, "root-adjacent mote must carry the relay burden: {tx0} vs {tx3}");
}
