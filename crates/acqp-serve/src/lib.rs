//! # acqp-serve — the multi-query basestation service policy
//!
//! The execution engine for concurrent queries lives in
//! [`acqp_sensornet::service`]; this crate supplies the *policy* behind
//! it (`DESIGN.md` §14):
//!
//! * [`Service`] — a [`ServePlanner`] that caches plans keyed by
//!   `(query signature, stats epoch)` so repeat admissions skip plan
//!   search entirely, and arms a per-signature [`DriftMonitor`] whose
//!   firing bumps the stats epoch and invalidates every cached plan.
//! * [`serve_schedule`] — the turn-key entry point: builds the fleet,
//!   runs the schedule through [`run_service`], and distills a
//!   [`ServeReport`] with p50/p99 admission-to-result latency (in
//!   epochs — the service never reads a wall clock) and amortized
//!   sensing energy per query.
//! * [`independent_schedule_energy`] — the N-independent-runs baseline
//!   the shared-acquisition service is benchmarked against: every
//!   scheduled query on its own fresh fleet over its own trace window.
//!
//! Everything is deterministic: cache iteration uses `BTreeMap`, the
//! arbitration order is the schedule order, and a single-query service
//! run is bitwise identical to the plain engine (see
//! `tests/serve_equivalence.rs`).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::float_cmp))]

use std::collections::BTreeMap;

use acqp_core::{Dataset, DriftConfig, DriftMonitor, ExecMode, Query, QueryStatus, Result, Schema};
use acqp_obs::Recorder;
use acqp_sensornet::service::{
    AdmittedPlan, ScheduleEntry, ServePlanner, ServePolicyState, ServiceOptions, ServiceReport,
};
use acqp_sensornet::sim::{fleet_from_trace, run_simulation_mode};
use acqp_sensornet::{
    run_service_with, Basestation, CrashConfig, EnergyModel, FaultModel, PlannedQuery,
    ServicePolicy,
};

/// Planning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// §2.4 plan-size penalty applied to every admission's sweep.
    pub alpha: f64,
    /// Candidate split budgets for the `Heuristic-k` sweep.
    pub candidate_splits: Vec<usize>,
    /// Drift thresholds governing plan-cache invalidation.
    pub drift: DriftConfig,
    /// Seeded fault model for the run ([`FaultModel::none`] keeps the
    /// lossless fast path).
    pub faults: FaultModel,
    /// Crash/checkpoint configuration (inactive by default).
    pub crash: CrashConfig,
    /// Admission-control and degradation policy (no-op by default).
    pub policy: ServicePolicy,
    /// Collect delivered `(epoch, mote)` rows per query (forces the
    /// robust engine path; used by transparency and prefix tests).
    pub collect_rows: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            alpha: 0.0,
            candidate_splits: vec![0, 1, 2, 4, 8],
            drift: DriftConfig::default(),
            faults: FaultModel::none(),
            crash: CrashConfig::default(),
            policy: ServicePolicy::default(),
            collect_rows: false,
        }
    }
}

/// The caching, drift-aware planning policy: plans are cached under
/// `(query signature, stats epoch)`; completions feed per-predicate
/// counts into a per-signature [`DriftMonitor`], and a drifted monitor
/// bumps the stats epoch — orphaning (and dropping) every cached plan,
/// so the next admission of any signature re-plans against fresh keys.
pub struct Service<'h> {
    bs: Basestation<'h>,
    cfg: ServeConfig,
    cache: BTreeMap<(u64, u64), PlannedQuery>,
    monitors: BTreeMap<u64, DriftMonitor>,
    /// Signature -> query, so checkpoints can serialize the cache with
    /// enough context to re-arm drift monitors on recovery.
    queries: BTreeMap<u64, Query>,
    stats_epoch: u64,
}

impl<'h> Service<'h> {
    /// Creates the policy over a basestation. Fails if the drift
    /// configuration is invalid or no candidate split budget is given.
    pub fn new(bs: Basestation<'h>, cfg: ServeConfig) -> Result<Self> {
        cfg.drift.validate()?;
        if cfg.candidate_splits.is_empty() {
            return Err(acqp_core::Error::EmptyQuery);
        }
        Ok(Service {
            bs,
            cfg,
            cache: BTreeMap::new(),
            monitors: BTreeMap::new(),
            queries: BTreeMap::new(),
            stats_epoch: 0,
        })
    }

    /// Plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// The basestation the policy plans with.
    pub fn basestation(&self) -> &Basestation<'h> {
        &self.bs
    }
}

impl ServePlanner for Service<'_> {
    fn plan_admitted(&mut self, query: &Query, _epoch: usize) -> Result<AdmittedPlan> {
        let sig = query.signature();
        self.queries.entry(sig).or_insert_with(|| query.clone());
        if let Some(planned) = self.cache.get(&(sig, self.stats_epoch)) {
            return Ok(AdmittedPlan { planned: planned.clone(), cache_hit: true, subproblems: 0 });
        }
        let (_, planned, subproblems) =
            self.bs.plan_query_sized_reported(query, self.cfg.alpha, &self.cfg.candidate_splits)?;
        // Nothing unverified is ever memoized: the cache boundary
        // re-runs the static verifier, so every future hit hands out
        // bytes that are known-good for this exact query.
        acqp_verify::verify_wire(&planned.wire, query, self.bs.schema())?;
        self.cache.insert((sig, self.stats_epoch), planned.clone());
        if !self.monitors.contains_key(&sig) {
            let monitor =
                DriftMonitor::new(self.bs.estimated_selectivities(query), self.cfg.drift)?;
            self.monitors.insert(sig, monitor);
        }
        Ok(AdmittedPlan { planned, cache_hit: false, subproblems })
    }

    fn query_completed(&mut self, query: &Query, _epoch: usize, pred_counts: &[(u64, u64)]) -> u64 {
        let sig = query.signature();
        let Some(monitor) = self.monitors.get_mut(&sig) else { return 0 };
        for (j, &(evaluated, passed)) in pred_counts.iter().enumerate() {
            if j < monitor.len() && evaluated > 0 && passed <= evaluated {
                monitor.observe_counts(j, evaluated, passed);
            }
        }
        if !monitor.drifted() {
            return 0;
        }
        // Drift: every cached plan was built against stale statistics.
        // Bumping the stats epoch orphans all `(sig, old_epoch)` keys;
        // dropping them keeps the cache from growing without bound.
        let invalidated = self.cache.len() as u64;
        self.cache.clear();
        self.stats_epoch += 1;
        // Re-arm this signature's monitor so one drifted query doesn't
        // re-invalidate on every subsequent completion.
        monitor.reset(self.bs.estimated_selectivities(query));
        invalidated
    }

    fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    fn policy_state(&self) -> Option<ServePolicyState> {
        let mut plans = Vec::new();
        for (&(sig, key_epoch), planned) in &self.cache {
            if let Some(query) = self.queries.get(&sig) {
                plans.push((query.clone(), key_epoch, planned.clone()));
            }
        }
        Some(ServePolicyState { stats_epoch: self.stats_epoch, plans })
    }

    fn restore_policy_state(&mut self, state: Option<ServePolicyState>) {
        self.cache.clear();
        self.monitors.clear();
        self.queries.clear();
        let Some(st) = state else {
            // Cold start: the policy is back at genesis and re-plans
            // (and re-arms monitors) on the next admission.
            self.stats_epoch = 0;
            return;
        };
        self.stats_epoch = st.stats_epoch;
        for (query, key_epoch, planned) in st.plans {
            // Recovered bytes must re-earn verification before they can
            // be handed out as cache hits; a failing entry is demoted
            // to a re-plan on its next admission.
            if acqp_verify::verify_wire(&planned.wire, &query, self.bs.schema()).is_err() {
                continue;
            }
            let sig = query.signature();
            // Monitors restart from the estimator baseline: drift
            // deltas since the checkpoint are lost with the process.
            if !self.monitors.contains_key(&sig) {
                if let Ok(monitor) =
                    DriftMonitor::new(self.bs.estimated_selectivities(&query), self.cfg.drift)
                {
                    self.monitors.insert(sig, monitor);
                }
            }
            self.cache.insert((sig, key_epoch), planned);
            self.queries.insert(sig, query);
        }
    }
}

/// What [`serve_schedule`] distills out of a service run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The raw engine report (per-query outcomes, energy ledgers).
    pub service: ServiceReport,
    /// Schedule entries actually admitted.
    pub admitted: usize,
    /// Admissions served from the plan cache.
    pub cache_hits: u64,
    /// Admissions that ran a plan search.
    pub cache_misses: u64,
    /// Cached plans dropped by drift-triggered invalidation.
    pub cache_invalidations: u64,
    /// Plan-search subproblems expanded on cache hits — zero by
    /// construction, pinned by the bench gate.
    pub hit_subproblems: u64,
    /// Plan-search subproblems expanded in total.
    pub total_subproblems: u64,
    /// Median admission-to-first-result latency in epochs, over the
    /// queries that produced a result (`0` when none did).
    pub p50_latency_epochs: u64,
    /// 99th-percentile admission-to-first-result latency in epochs.
    pub p99_latency_epochs: u64,
    /// Mote-side sensing energy divided by admitted queries (µJ).
    pub amortized_sensing_uj_per_query: f64,
    /// Total mote-side energy of the shared run (µJ).
    pub shared_total_uj: f64,
    /// Queries shed by admission control.
    pub shed: usize,
    /// Queries terminated at their deadline with partial results.
    pub timed_out: usize,
    /// Windows that completed but lost work to faults along the way.
    pub partial: usize,
}

/// Nearest-rank percentile of a sorted slice (`p` in `(0, 1]`).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs `schedule` through the shared-acquisition service over a fleet
/// of `motes` motes all observing `trace`, planning from `history`, and
/// distills the [`ServeReport`].
#[allow(clippy::too_many_arguments)]
pub fn serve_schedule(
    schema: &Schema,
    history: &Dataset,
    trace: &Dataset,
    schedule: &[ScheduleEntry],
    motes: u16,
    model: &EnergyModel,
    epochs: usize,
    mode: ExecMode,
    cfg: ServeConfig,
    rec: &Recorder,
) -> Result<ServeReport> {
    let opts = ServiceOptions {
        faults: cfg.faults.clone(),
        crash: cfg.crash.clone(),
        policy: cfg.policy.clone(),
        collect_rows: cfg.collect_rows,
    };
    let mut service = Service::new(Basestation::new(schema.clone(), history), cfg)?;
    let mut fleet = fleet_from_trace(trace, motes);
    let report = run_service_with(
        schema,
        schedule,
        &mut service,
        &mut fleet,
        model,
        epochs,
        mode,
        rec,
        &opts,
    )?;

    let admitted_rows: Vec<_> = report.queries.iter().filter(|q| q.admitted).collect();
    let admitted = admitted_rows.len();
    let cache_hits = admitted_rows.iter().filter(|q| q.cache_hit).count() as u64;
    let cache_misses = admitted as u64 - cache_hits;
    let cache_invalidations = admitted_rows.iter().map(|q| q.invalidated).sum();
    let hit_subproblems = admitted_rows.iter().filter(|q| q.cache_hit).map(|q| q.subproblems).sum();
    let total_subproblems = admitted_rows.iter().map(|q| q.subproblems).sum();
    let mut latencies: Vec<u64> = admitted_rows.iter().filter_map(|q| q.latency_epochs).collect();
    latencies.sort_unstable();
    let amortized = if admitted > 0 { report.network.sensing_uj / admitted as f64 } else { 0.0 };
    Ok(ServeReport {
        admitted,
        cache_hits,
        cache_misses,
        cache_invalidations,
        hit_subproblems,
        total_subproblems,
        p50_latency_epochs: percentile(&latencies, 0.50),
        p99_latency_epochs: percentile(&latencies, 0.99),
        amortized_sensing_uj_per_query: amortized,
        shared_total_uj: report.network.total_uj(),
        shed: report.queries.iter().filter(|q| q.shed_at.is_some()).count(),
        timed_out: report.count_status(QueryStatus::TimedOut),
        partial: report.count_status(QueryStatus::Partial),
        service: report,
    })
}

/// The N-independent-runs baseline: every schedule entry that the
/// service would admit runs alone — its own plan, its own fresh fleet,
/// its own trace window — through [`run_simulation_mode`]. Returns the
/// summed mote-side energy (µJ), the quantity the shared service must
/// strictly beat once queries overlap.
#[allow(clippy::too_many_arguments)]
pub fn independent_schedule_energy(
    schema: &Schema,
    history: &Dataset,
    trace: &Dataset,
    schedule: &[ScheduleEntry],
    motes: u16,
    model: &EnergyModel,
    epochs: usize,
    mode: ExecMode,
    cfg: &ServeConfig,
) -> Result<f64> {
    let bs = Basestation::new(schema.clone(), history);
    let mut total = 0.0;
    for entry in schedule {
        if entry.admit >= epochs {
            continue;
        }
        let lived = (entry.admit + entry.window.max(1)).min(epochs) - entry.admit;
        let hi = (entry.admit + lived).min(trace.len());
        let rows: Vec<Vec<u16>> = (entry.admit..hi)
            .map(|r| (0..schema.len()).map(|a| trace.value(r, a)).collect())
            .collect();
        let window = Dataset::from_rows(schema, rows)?;
        let (_, planned) = bs.plan_query_sized(&entry.query, cfg.alpha, &cfg.candidate_splits)?;
        let mut fleet = fleet_from_trace(&window, motes);
        let sim = run_simulation_mode(
            schema,
            &entry.query,
            &planned,
            &mut fleet,
            model,
            lived,
            mode,
            &Recorder::disabled(),
        );
        total += sim.network.total_uj();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::{Attribute, Pred};

    fn setup() -> (Schema, Dataset, Query, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 100.0),
            Attribute::new("b", 2, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..400u16 {
            let t = i % 2;
            let a = if i % 10 == 0 { 1 - t } else { t };
            let b = if i % 12 == 0 { t } else { 1 - t };
            rows.push(vec![a, b, t]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let q1 = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let q2 = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(2, 0, 0)]).unwrap();
        (schema, data, q1, q2)
    }

    #[test]
    fn repeat_admissions_hit_the_cache_with_zero_search() {
        let (schema, data, q1, q2) = setup();
        let schedule: Vec<ScheduleEntry> = (0..6)
            .map(|i| ScheduleEntry::new(if i % 2 == 0 { q1.clone() } else { q2.clone() }, i * 4, 8))
            .collect();
        let rep = serve_schedule(
            &schema,
            &data,
            &data,
            &schedule,
            2,
            &EnergyModel::mica_like(),
            40,
            ExecMode::Scalar,
            ServeConfig::default(),
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(rep.admitted, 6);
        // Two distinct signatures -> two misses, four hits.
        assert_eq!(rep.cache_misses, 2);
        assert_eq!(rep.cache_hits, 4);
        assert_eq!(rep.hit_subproblems, 0, "cache hits must skip plan search entirely");
        assert!(rep.total_subproblems > 0);
        assert!(rep.p50_latency_epochs >= 1);
        assert!(rep.p99_latency_epochs >= rep.p50_latency_epochs);
        assert!(rep.amortized_sensing_uj_per_query > 0.0);
    }

    #[test]
    fn shared_service_beats_independent_runs_when_queries_overlap() {
        let (schema, data, q1, q2) = setup();
        let schedule = vec![
            ScheduleEntry::new(q1.clone(), 0, 32),
            ScheduleEntry::new(q2.clone(), 0, 32),
            ScheduleEntry::new(q1, 8, 24),
        ];
        let model = EnergyModel::mica_like();
        let cfg = ServeConfig::default();
        let rep = serve_schedule(
            &schema,
            &data,
            &data,
            &schedule,
            2,
            &model,
            32,
            ExecMode::Scalar,
            cfg.clone(),
            &Recorder::disabled(),
        )
        .unwrap();
        let independent = independent_schedule_energy(
            &schema,
            &data,
            &data,
            &schedule,
            2,
            &model,
            32,
            ExecMode::Scalar,
            &cfg,
        )
        .unwrap();
        assert!(
            rep.shared_total_uj < independent,
            "shared {} !< independent {independent}",
            rep.shared_total_uj
        );
        assert!(rep.service.all_correct());
    }

    #[test]
    fn drift_bumps_the_stats_epoch_and_clears_the_cache() {
        let (schema, data, q1, _) = setup();
        // Plan against history where pred0 holds ~half the time, then
        // run on a trace where attribute `a` is constant 0 — pred0
        // never holds, which is far past the default 0.15 threshold.
        let drifted_rows: Vec<Vec<u16>> = (0..200u16).map(|i| vec![0, i % 2, i % 2]).collect();
        let drifted = Dataset::from_rows(&schema, drifted_rows).unwrap();
        let schedule =
            vec![ScheduleEntry::new(q1.clone(), 0, 40), ScheduleEntry::new(q1.clone(), 45, 40)];
        let rep = serve_schedule(
            &schema,
            &data,
            &drifted,
            &schedule,
            2,
            &EnergyModel::mica_like(),
            90,
            ExecMode::Scalar,
            ServeConfig::default(),
            &Recorder::disabled(),
        )
        .unwrap();
        // Each completion observes the drifted trace and invalidates
        // the one cached plan of its era; the second admission then
        // re-plans (a miss) rather than hitting the stale entry.
        assert_eq!(rep.cache_invalidations, 2);
        assert_eq!(rep.cache_misses, 2);
        assert_eq!(rep.cache_hits, 0);
    }

    #[test]
    fn service_validates_its_configuration() {
        let (schema, data, _, _) = setup();
        let bs = Basestation::new(schema.clone(), &data);
        let bad_drift = ServeConfig {
            drift: DriftConfig { threshold: 0.0, min_samples: 1 },
            ..ServeConfig::default()
        };
        assert!(Service::new(bs, bad_drift).is_err());
        let bs = Basestation::new(schema, &data);
        let no_candidates = ServeConfig { candidate_splits: vec![], ..ServeConfig::default() };
        assert!(Service::new(bs, no_candidates).is_err());
    }
}
