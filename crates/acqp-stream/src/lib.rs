//! # acqp-stream — conditional plans over drifting data streams
//!
//! §7 of the paper ("Queries over data streams"): *"in many settings,
//! the data distribution may change slowly over time. In such cases, we
//! can modify our algorithms to slowly change the plan to adapt to the
//! changing distribution. Specifically, our methods for computing
//! probabilities from a data set can be modified to compute
//! probabilities incrementally over a sliding window of data. As the
//! probabilities change, we can modify our greedy algorithm to
//! re-evaluate the plan."*
//!
//! This crate packages that loop:
//!
//! * [`SlidingWindow`] — a fixed-capacity ring buffer of the most recent
//!   tuples, exposable as a [`Dataset`] for the counting estimator.
//! * [`CostTracker`] — exponentially-weighted tracking of the running
//!   plan's measured per-tuple cost against its expectation at plan
//!   time, the drift signal.
//! * [`AdaptivePlanner`] — the supervision loop: feed tuples, execute
//!   the current plan, re-plan when (a) the measured cost degrades
//!   beyond a tolerance or (b) a periodic re-planning interval elapses,
//!   and switch plans only when the candidate wins on the current
//!   window (hysteresis, so a noisy batch does not thrash plans).

#![warn(missing_docs)]
// Determinism tests assert bitwise-equal floats on purpose; the
// workspace-level `float_cmp` warning stays on for library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
use acqp_core::prelude::*;

/// A fixed-capacity sliding window of tuples over a schema.
///
/// ```
/// use acqp_core::{Attribute, Schema};
/// use acqp_stream::SlidingWindow;
///
/// let schema = Schema::new(vec![Attribute::new("x", 4, 1.0)]).unwrap();
/// let mut w = SlidingWindow::new(&schema, 2);
/// w.push(vec![0]);
/// w.push(vec![1]);
/// w.push(vec![2]); // evicts the oldest
/// assert_eq!(w.len(), 2);
/// assert_eq!(w.total_pushed(), 3);
/// let snap = w.snapshot(&schema).unwrap();
/// assert!(snap.column(0).contains(&2));
/// assert!(!snap.column(0).contains(&0));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    width: usize,
    capacity: usize,
    /// Ring storage, row-major.
    rows: Vec<Vec<u16>>,
    /// Next slot to overwrite.
    head: usize,
    /// Total tuples ever pushed.
    pushed: u64,
}

impl SlidingWindow {
    /// A window retaining the most recent `capacity` tuples of
    /// `schema`-shaped data.
    pub fn new(schema: &Schema, capacity: usize) -> Self {
        assert!(capacity > 0);
        SlidingWindow { width: schema.len(), capacity, rows: Vec::new(), head: 0, pushed: 0 }
    }

    /// Appends one tuple, evicting the oldest when full.
    pub fn push(&mut self, tuple: Vec<u16>) {
        debug_assert_eq!(tuple.len(), self.width);
        if self.rows.len() < self.capacity {
            self.rows.push(tuple);
        } else {
            self.rows[self.head] = tuple;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Number of tuples currently held.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True until the first push.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True once the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.rows.len() == self.capacity
    }

    /// Total tuples ever pushed (evicted ones included).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Materializes the window as a [`Dataset`] (order irrelevant for
    /// counting statistics).
    pub fn snapshot(&self, schema: &Schema) -> Result<Dataset> {
        Dataset::from_rows(schema, self.rows.clone())
    }

    /// Exports the window's full state — ring contents in storage
    /// order, head slot, lifetime push count — for checkpointing. A
    /// [`SlidingWindow::from_state`] round trip is bit-identical: the
    /// restored window produces the same snapshots *and* evicts in the
    /// same order under future pushes.
    pub fn state(&self) -> WindowState {
        WindowState {
            width: self.width,
            capacity: self.capacity,
            rows: self.rows.clone(),
            head: self.head,
            pushed: self.pushed,
        }
    }

    /// Rebuilds a window from checkpointed state, validating every
    /// invariant a healthy window maintains so a corrupt checkpoint is
    /// rejected here rather than corrupting later estimates.
    pub fn from_state(state: WindowState) -> Result<Self> {
        let WindowState { width, capacity, rows, head, pushed } = state;
        let ok = capacity > 0
            && rows.len() <= capacity
            && (head == 0 || head < capacity)
            && (rows.len() == capacity || head == 0)
            && pushed >= rows.len() as u64
            && rows.iter().all(|r| r.len() == width);
        if !ok {
            return Err(Error::Parse { what: "sliding-window state violates ring invariants" });
        }
        Ok(SlidingWindow { width, capacity, rows, head, pushed })
    }
}

/// A [`SlidingWindow`]'s checkpointable state (see [`SlidingWindow::state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowState {
    /// Tuple width (schema length).
    pub width: usize,
    /// Ring capacity.
    pub capacity: usize,
    /// Ring storage in *storage* order (not age order).
    pub rows: Vec<Vec<u16>>,
    /// Next slot to overwrite once the ring is full.
    pub head: usize,
    /// Total tuples ever pushed (evicted ones included).
    pub pushed: u64,
}

/// Exponentially-weighted comparison of a plan's measured cost against
/// its planning-time expectation.
#[derive(Debug, Clone)]
pub struct CostTracker {
    /// Expected per-tuple cost the plan claimed when built.
    expected: f64,
    /// EWMA of measured per-tuple cost.
    ewma: Option<f64>,
    /// EWMA smoothing factor in (0, 1]; higher reacts faster.
    alpha: f64,
}

impl CostTracker {
    /// Tracks against `expected` with smoothing factor `alpha`.
    pub fn new(expected: f64, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        CostTracker { expected, ewma: None, alpha }
    }

    /// Records one tuple's measured execution cost.
    pub fn observe(&mut self, cost: f64) {
        self.ewma = Some(match self.ewma {
            None => cost,
            Some(e) => e + self.alpha * (cost - e),
        });
    }

    /// Smoothed measured cost (None before the first observation).
    pub fn measured(&self) -> Option<f64> {
        self.ewma
    }

    /// The claim the plan was built with.
    pub fn expected(&self) -> f64 {
        self.expected
    }

    /// Relative degradation of measured over expected cost; 0 while no
    /// observation or when performing at/above expectation.
    pub fn degradation(&self) -> f64 {
        match self.ewma {
            Some(m) if self.expected > 0.0 => ((m - self.expected) / self.expected).max(0.0),
            Some(m) => m.max(0.0),
            None => 0.0,
        }
    }
}

/// Why the adaptive planner rebuilt (or kept) its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adaptation {
    /// Plan kept: no trigger fired.
    Kept,
    /// Trigger fired but the fresh candidate was not better on the
    /// window; plan kept (hysteresis).
    CandidateRejected,
    /// Plan replaced after cost degradation beyond tolerance.
    ReplannedOnDrift,
    /// Plan replaced at the periodic re-planning interval.
    ReplannedOnSchedule,
}

/// The §7 adaptation loop around a [`GreedyPlanner`].
pub struct AdaptivePlanner {
    schema: Schema,
    query: Query,
    planner: GreedyPlanner,
    window: SlidingWindow,
    /// Re-plan when measured cost exceeds expectation by this fraction.
    drift_tolerance: f64,
    /// Also re-evaluate every `replan_interval` tuples (0 = never).
    replan_interval: u64,
    /// Minimum window fill before the first plan is built.
    min_fill: usize,
    plan: Option<Plan>,
    tracker: Option<CostTracker>,
    last_replan_at: u64,
    /// Count of plan switches performed.
    pub replans: usize,
}

impl AdaptivePlanner {
    /// Creates the loop. `window` tuples are retained; the first plan is
    /// built once `min_fill` tuples have arrived.
    pub fn new(
        schema: Schema,
        query: Query,
        planner: GreedyPlanner,
        window: usize,
        min_fill: usize,
    ) -> Self {
        let w = SlidingWindow::new(&schema, window);
        AdaptivePlanner {
            schema,
            query,
            planner,
            window: w,
            drift_tolerance: 0.15,
            replan_interval: 0,
            min_fill: min_fill.max(2),
            plan: None,
            tracker: None,
            last_replan_at: 0,
            replans: 0,
        }
    }

    /// Sets the drift tolerance (fractional cost degradation that
    /// triggers a re-plan). Default 0.15.
    pub fn with_drift_tolerance(mut self, tol: f64) -> Self {
        self.drift_tolerance = tol.max(0.0);
        self
    }

    /// Re-evaluates the plan every `n` tuples regardless of drift.
    pub fn with_replan_interval(mut self, n: u64) -> Self {
        self.replan_interval = n;
        self
    }

    /// The current plan, if one has been built.
    pub fn plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }

    /// The current drift tracker.
    pub fn tracker(&self) -> Option<&CostTracker> {
        self.tracker.as_ref()
    }

    /// Feeds one tuple: executes the current plan against it (charging
    /// acquisition costs), slides the window, and adapts if triggered.
    ///
    /// Returns the execution outcome (None while the window is still
    /// filling and no plan exists) and what adaptation happened.
    pub fn ingest(&mut self, tuple: Vec<u16>) -> Result<(Option<ExecOutcome>, Adaptation)> {
        debug_assert_eq!(tuple.len(), self.schema.len());
        // Execute against the *current* plan first: adaptation must not
        // peek at the tuple it is about to be scored on.
        let outcome = match &self.plan {
            Some(plan) => {
                let mut src = SliceSource(&tuple);
                let out = execute(plan, &self.query, &self.schema, &mut src);
                if let Some(t) = &mut self.tracker {
                    t.observe(out.cost);
                }
                Some(out)
            }
            None => None,
        };
        self.window.push(tuple);

        let adaptation = self.maybe_adapt()?;
        Ok((outcome, adaptation))
    }

    fn maybe_adapt(&mut self) -> Result<Adaptation> {
        if self.window.len() < self.min_fill {
            return Ok(Adaptation::Kept);
        }
        if self.plan.is_none() {
            // Initial plan.
            let (plan, expected) = self.rebuild()?;
            self.install(plan, expected);
            return Ok(Adaptation::ReplannedOnSchedule);
        }
        let drifted = self.tracker.as_ref().is_some_and(|t| t.degradation() > self.drift_tolerance);
        let scheduled = self.replan_interval > 0
            && self.window.total_pushed() - self.last_replan_at >= self.replan_interval;
        if !drifted && !scheduled {
            return Ok(Adaptation::Kept);
        }

        let (candidate, cand_expected) = self.rebuild()?;
        // Hysteresis: the challenger must beat the incumbent on the
        // *current window*, both measured under the same data.
        let snap = self.window.snapshot(&self.schema)?;
        let incumbent = self.plan.as_ref().expect("checked above");
        let cur = measure(incumbent, &self.query, &self.schema, &snap).mean_cost;
        let new = measure(&candidate, &self.query, &self.schema, &snap).mean_cost;
        if new + 1e-9 < cur {
            self.install(candidate, cand_expected);
            self.replans += 1;
            Ok(if drifted { Adaptation::ReplannedOnDrift } else { Adaptation::ReplannedOnSchedule })
        } else {
            // Reset the tracker against the re-validated expectation so
            // the same drift does not re-trigger every tuple.
            self.tracker = Some(CostTracker::new(cur, 0.05));
            self.last_replan_at = self.window.total_pushed();
            Ok(Adaptation::CandidateRejected)
        }
    }

    fn rebuild(&self) -> Result<(Plan, f64)> {
        let snap = self.window.snapshot(&self.schema)?;
        let est = CountingEstimator::with_ranges(&snap, Ranges::root(&self.schema));
        self.planner.plan_with_cost(&self.schema, &self.query, &est)
    }

    fn install(&mut self, plan: Plan, expected: f64) {
        self.tracker = Some(CostTracker::new(expected, 0.05));
        self.plan = Some(plan);
        self.last_replan_at = self.window.total_pushed();
    }
}

/// A [`TupleSource`] over a borrowed row.
struct SliceSource<'a>(&'a [u16]);

impl TupleSource for SliceSource<'_> {
    fn acquire(&mut self, attr: AttrId) -> u16 {
        self.0[attr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("a", 2, 100.0),
            Attribute::new("b", 2, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap()
    }

    fn tuple(rng: &mut StdRng, regime: usize) -> Vec<u16> {
        let t = u16::from(rng.gen_bool(0.5));
        let (a, b) = if regime == 0 { (t, 1 - t) } else { (1 - t, t) };
        let a = if rng.gen_bool(0.1) { 1 - a } else { a };
        let b = if rng.gen_bool(0.1) { 1 - b } else { b };
        vec![a, b, t]
    }

    #[test]
    fn window_ring_semantics() {
        let s = schema();
        let mut w = SlidingWindow::new(&s, 3);
        assert!(w.is_empty());
        for i in 0..5u16 {
            w.push(vec![i % 2, i % 2, i % 2]);
        }
        assert!(w.is_full());
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_pushed(), 5);
        let snap = w.snapshot(&s).unwrap();
        assert_eq!(snap.len(), 3);
        // Rows 2, 3, 4 survive (in ring order).
        let vals: Vec<u16> = (0..3).map(|r| snap.value(r, 0)).collect();
        assert_eq!(vals.iter().filter(|&&v| v == 0).count(), 2); // rows 2 and 4
    }

    #[test]
    fn window_state_round_trip_preserves_ring_and_future_evictions() {
        let s = schema();
        let mut w = SlidingWindow::new(&s, 3);
        for i in 0..5u16 {
            w.push(vec![i % 2, i % 2, i % 2]);
        }
        let state = w.state();
        let mut restored = SlidingWindow::from_state(state.clone()).unwrap();
        assert_eq!(restored.state(), state);
        let (a, b) = (w.snapshot(&s).unwrap(), restored.snapshot(&s).unwrap());
        assert_eq!(a.len(), b.len());
        for r in 0..a.len() {
            for c in 0..a.width() {
                assert_eq!(a.value(r, c), b.value(r, c));
            }
        }
        // Future pushes evict in the same order as the original.
        w.push(vec![1, 0, 1]);
        restored.push(vec![1, 0, 1]);
        assert_eq!(w.state(), restored.state());
    }

    #[test]
    fn window_state_rejects_corrupt_invariants() {
        let s = schema();
        let mut w = SlidingWindow::new(&s, 2);
        w.push(vec![0, 0, 0]);
        let good = w.state();
        assert!(SlidingWindow::from_state(good.clone()).is_ok());
        for bad in [
            WindowState { capacity: 0, ..good.clone() },
            WindowState { head: 5, ..good.clone() },
            // Partially filled ring must keep head at slot 0.
            WindowState { head: 1, ..good.clone() },
            WindowState { pushed: 0, ..good.clone() },
            WindowState { rows: vec![vec![0]], ..good.clone() },
            WindowState { rows: vec![vec![0, 0, 0]; 9], ..good.clone() },
        ] {
            assert!(SlidingWindow::from_state(bad).is_err());
        }
    }

    #[test]
    fn tracker_degradation() {
        let mut t = CostTracker::new(100.0, 0.5);
        assert_eq!(t.degradation(), 0.0);
        t.observe(100.0);
        assert!(t.degradation() < 1e-9);
        for _ in 0..20 {
            t.observe(150.0);
        }
        assert!(t.degradation() > 0.4, "{}", t.degradation());
        for _ in 0..50 {
            t.observe(90.0);
        }
        assert_eq!(t.degradation(), 0.0);
    }

    #[test]
    fn builds_initial_plan_after_min_fill() {
        let s = schema();
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let mut ap = AdaptivePlanner::new(s, q, GreedyPlanner::new(4), 100, 50);
        let mut rng = StdRng::seed_from_u64(1);
        let mut planned_at = None;
        for i in 0..60 {
            let (_, ad) = ap.ingest(tuple(&mut rng, 0)).unwrap();
            if ad == Adaptation::ReplannedOnSchedule && planned_at.is_none() {
                planned_at = Some(i);
            }
        }
        assert_eq!(planned_at, Some(49), "plan appears exactly at min_fill");
        assert!(ap.plan().is_some());
    }

    #[test]
    fn replans_on_regime_flip_and_recovers_cost() {
        let s = schema();
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let mut ap =
            AdaptivePlanner::new(s, q, GreedyPlanner::new(4), 300, 150).with_drift_tolerance(0.1);
        let mut rng = StdRng::seed_from_u64(2);
        // Regime 0 until the plan settles.
        let mut costs_before = Vec::new();
        for _ in 0..600 {
            if let (Some(out), _) = ap.ingest(tuple(&mut rng, 0)).unwrap() {
                costs_before.push(out.cost);
            }
        }
        let replans_before = ap.replans;
        // Flip the regime; the frozen plan's cost rises, drift triggers.
        let mut post_costs = Vec::new();
        for _ in 0..900 {
            if let (Some(out), _) = ap.ingest(tuple(&mut rng, 1)).unwrap() {
                post_costs.push(out.cost);
            }
        }
        assert!(ap.replans > replans_before, "drift must force a re-plan");
        // The tail (after adaptation) should be much cheaper than the
        // drift spike right after the flip.
        let spike: f64 = post_costs[..100].iter().sum::<f64>() / 100.0;
        let tail: f64 = post_costs[post_costs.len() - 200..].iter().sum::<f64>() / 200.0;
        assert!(tail < spike * 0.85, "adaptation should recover: spike {spike:.1}, tail {tail:.1}");
    }

    #[test]
    fn hysteresis_rejects_noise_triggers() {
        let s = schema();
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        // Interval-based re-planning on a STATIONARY stream: triggers
        // fire but candidates are no better, so the plan stays.
        let mut ap = AdaptivePlanner::new(s, q, GreedyPlanner::new(4), 200, 100)
            .with_replan_interval(150)
            .with_drift_tolerance(f64::INFINITY);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rejected = 0;
        let mut switched = 0;
        for _ in 0..1200 {
            match ap.ingest(tuple(&mut rng, 0)).unwrap().1 {
                Adaptation::CandidateRejected => rejected += 1,
                Adaptation::ReplannedOnDrift => switched += 1,
                Adaptation::ReplannedOnSchedule => {}
                Adaptation::Kept => {}
            }
        }
        assert_eq!(switched, 0);
        assert!(rejected >= 3, "interval triggers should mostly be rejected: {rejected}");
        // Replans counts only actual switches (scheduled installs of the
        // very first plan are not switches).
        assert!(ap.replans <= 2, "stationary stream must not thrash: {}", ap.replans);
    }

    #[test]
    fn plans_stay_exact_throughout() {
        let s = schema();
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let mut ap = AdaptivePlanner::new(s, q.clone(), GreedyPlanner::new(4), 150, 60)
            .with_drift_tolerance(0.05);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..1500 {
            let regime = usize::from(i >= 700);
            let t = tuple(&mut rng, regime);
            let expected = q.eval(&t);
            if let (Some(out), _) = ap.ingest(t).unwrap() {
                assert_eq!(out.verdict, expected, "verdict must always be exact");
            }
        }
    }
}
