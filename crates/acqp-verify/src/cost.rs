//! Cost pass: certified per-tuple acquisition-cost bounds.
//!
//! Walks every root-to-leaf path, charging acquisitions with the *same
//! arithmetic* the executor's `TupleState` uses — `cost +=
//! model.cost(schema, attr, mask)` then `mask |= 1 << attr`, in path
//! order — so the bounds are not approximations but exact fold-overs
//! of the reachable executions:
//!
//! * a split charges its attribute (first acquisition only, Eq. 1),
//! * a sequential leaf charges a *prefix* of its order: at least the
//!   first predicate's attribute (evaluation always starts), at most
//!   all of them (every predicate passes).
//!
//! `worst_case` is the maximum over paths of the full-prefix cost and
//! `best_case` the minimum over paths of the one-predicate prefix, so
//! for every tuple `best_case <= ExecOutcome.cost <= worst_case`, with
//! equality bitwise when the tuple realizes the extremal path (the
//! per-path sums are computed in the executor's exact charge order).
//! Any expectation under any tuple distribution — in particular the
//! planner's claimed `PlanReport.expected_cost` (Eq. 3) — is a convex
//! combination of path costs and must land inside the interval; a
//! claim outside it (mod float rounding) is typed as
//! [`VerifyError::CostClaim`].

use acqp_core::costmodel::CostModel;
use acqp_core::{Query, Schema};

use crate::error::VerifyError;

/// Certified per-tuple cost interval for a verified wire plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBound {
    /// Maximum acquisition cost any tuple can incur (deepest path, all
    /// leaf predicates evaluated).
    pub worst_case: f64,
    /// Minimum acquisition cost any tuple can incur (cheapest path,
    /// leaf evaluation stopping at its first predicate).
    pub best_case: f64,
}

impl CostBound {
    /// Whether a claimed *expected* per-tuple cost is consistent with
    /// the certified interval. `eps` absorbs the float-rounding
    /// difference between the recursive Eq. 3 evaluation and the
    /// straight path sums.
    pub fn admits_expected(&self, claimed: f64, eps: f64) -> bool {
        claimed.is_finite() && claimed >= self.best_case - eps && claimed <= self.worst_case + eps
    }

    /// [`admits_expected`](Self::admits_expected) as a typed check with
    /// the relative epsilon used across the engine integration.
    pub fn check_claim(&self, claimed: f64) -> Result<(), VerifyError> {
        let eps = 1e-9 * self.worst_case.abs().max(1.0);
        if self.admits_expected(claimed, eps) {
            Ok(())
        } else {
            Err(VerifyError::CostClaim {
                claimed,
                best_case: self.best_case,
                worst_case: self.worst_case,
            })
        }
    }
}

/// One suspended split arm during the iterative path walk.
struct Arm {
    /// Arms remaining at this split (1 = high arm unvisited).
    remaining: u8,
    /// Acquired-set bitmask the high arm starts from.
    mask: u64,
    /// Accumulated charge the high arm starts from.
    cost: f64,
}

/// Walks all root-to-leaf paths of a structurally and semantically
/// valid plan and folds the certified bound. Total on arbitrary bytes
/// (truncation and bad tags surface as typed errors) so it can also
/// run standalone.
pub fn path_bounds(
    bytes: &[u8],
    query: &Query,
    schema: &Schema,
    model: &CostModel,
) -> Result<CostBound, VerifyError> {
    if bytes.is_empty() {
        return Err(VerifyError::Empty);
    }
    let mut pos = 0usize;
    let mut pending: Vec<Arm> = Vec::new();
    let (mut mask, mut cost) = (0u64, 0.0f64);
    let mut worst = f64::NEG_INFINITY;
    let mut best = f64::INFINITY;
    loop {
        let tag = bytes
            .get(pos)
            .copied()
            .ok_or(VerifyError::Truncated { offset: pos, what: "node tag" })?;
        let mut leaf = true;
        match tag {
            0x00 | 0x01 => {
                worst = worst.max(cost);
                best = best.min(cost);
                pos += 1;
            }
            0x02 => {
                let len = *bytes
                    .get(pos + 1)
                    .ok_or(VerifyError::Truncated { offset: pos + 1, what: "seq length" })?
                    as usize;
                let body = bytes
                    .get(pos + 2..pos + 2 + len)
                    .ok_or(VerifyError::Truncated { offset: pos + 2, what: "seq body" })?;
                // Cheapest completion: evaluation stops at the first
                // predicate (an empty order decides immediately).
                let mut path_best = cost;
                if let Some(&first) = body.first() {
                    let j = first as usize;
                    if j >= query.len() {
                        return Err(VerifyError::PredOutOfRange {
                            offset: pos + 2,
                            pred: j,
                            len: query.len(),
                        });
                    }
                    path_best += model.cost(schema, query.pred(j).attr(), mask);
                }
                // Costliest completion: every predicate passes, each
                // attribute charged in order exactly as the executor
                // would.
                let (mut leaf_mask, mut path_worst) = (mask, cost);
                for &pb in body {
                    let j = pb as usize;
                    if j >= query.len() {
                        return Err(VerifyError::PredOutOfRange {
                            offset: pos + 2,
                            pred: j,
                            len: query.len(),
                        });
                    }
                    let a = query.pred(j).attr();
                    path_worst += model.cost(schema, a, leaf_mask);
                    leaf_mask |= 1u64 << a;
                }
                worst = worst.max(path_worst);
                best = best.min(path_best);
                pos += 2 + len;
            }
            0x03 => {
                let Some(&[a, _, _]) = bytes.get(pos + 1..pos + 4) else {
                    return Err(VerifyError::Truncated { offset: pos + 1, what: "split header" });
                };
                let attr = a as usize;
                if attr >= schema.len() {
                    return Err(VerifyError::AttrOutOfRange {
                        offset: pos + 1,
                        attr,
                        n: schema.len(),
                    });
                }
                cost += model.cost(schema, attr, mask);
                mask |= 1u64 << attr;
                pending.push(Arm { remaining: 1, mask, cost });
                leaf = false;
                pos += 4;
            }
            _ => return Err(VerifyError::UnknownTag { offset: pos, tag }),
        }
        if leaf {
            loop {
                let Some(top) = pending.last_mut() else {
                    if pos != bytes.len() {
                        return Err(VerifyError::TrailingBytes {
                            offset: pos,
                            len: bytes.len() - pos,
                        });
                    }
                    return Ok(CostBound { worst_case: worst, best_case: best });
                };
                if top.remaining > 0 {
                    top.remaining -= 1;
                    mask = top.mask;
                    cost = top.cost;
                    break;
                }
                pending.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::{Attribute, Pred};

    fn setup() -> (Schema, Query) {
        let schema =
            Schema::new(vec![Attribute::new("a", 8, 10.0), Attribute::new("b", 8, 20.0)]).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 2, 5), Pred::not_in_range(1, 3, 6)]).unwrap();
        (schema, query)
    }

    #[test]
    fn seq_leaf_bounds_are_prefix_costs() {
        let (schema, query) = setup();
        let wire = [0x02, 2, 0, 1]; // evaluate pred0 (a), then pred1 (b)
        let b = path_bounds(&wire, &query, &schema, &CostModel::PerAttribute).unwrap();
        assert_eq!(b.best_case, 10.0);
        assert_eq!(b.worst_case, 30.0);
    }

    #[test]
    fn split_charges_its_attribute_once() {
        let (schema, query) = setup();
        // split(a<4, seq[0], seq[0,1]) — `a` is already acquired at
        // both leaves, so pred0 re-charges nothing.
        let wire = [0x03, 0, 4, 0, 0x02, 1, 0, 0x02, 2, 0, 1];
        let b = path_bounds(&wire, &query, &schema, &CostModel::PerAttribute).unwrap();
        assert_eq!(b.best_case, 10.0, "low path: a charged at the split, pred0 free");
        assert_eq!(b.worst_case, 30.0, "high path: a at the split + b at the leaf");
    }

    #[test]
    fn claim_check_brackets_the_interval() {
        let b = CostBound { worst_case: 30.0, best_case: 10.0 };
        assert!(b.check_claim(10.0).is_ok());
        assert!(b.check_claim(27.5).is_ok());
        assert!(matches!(b.check_claim(30.1), Err(VerifyError::CostClaim { .. })));
        assert!(matches!(b.check_claim(9.9), Err(VerifyError::CostClaim { .. })));
        assert!(matches!(b.check_claim(f64::NAN), Err(VerifyError::CostClaim { .. })));
    }
}
