//! Typed verification failures — one variant per corruption class.

use std::fmt;

/// Why a wire plan failed verification. Every variant carries the byte
/// offset of the offending node, so a rejected plan can be diagnosed
/// without re-running the verifier.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The buffer ended inside a node (`what` names the missing part).
    Truncated {
        /// Byte offset where more input was required.
        offset: usize,
        /// Which part of the grammar was cut short.
        what: &'static str,
    },
    /// A tag byte outside the wire grammar (`0x00..=0x03`).
    UnknownTag {
        /// Byte offset of the tag.
        offset: usize,
        /// The tag value found.
        tag: u8,
    },
    /// Bytes remain after the root subtree — unreachable by any
    /// execution, so either a splice or a truncated outer node.
    TrailingBytes {
        /// Offset of the first unreachable byte.
        offset: usize,
        /// How many bytes are unreachable.
        len: usize,
    },
    /// The buffer was empty: there is no root node at all.
    Empty,
    /// A sequential leaf names a predicate the query does not have.
    PredOutOfRange {
        /// Byte offset of the predicate index.
        offset: usize,
        /// The out-of-range predicate index.
        pred: usize,
        /// Number of predicates in the query.
        len: usize,
    },
    /// A predicate appears twice in one sequential leaf — it would be
    /// evaluated (and mis-counted) twice on that root-to-leaf path.
    DuplicatePred {
        /// Byte offset of the second occurrence.
        offset: usize,
        /// The repeated predicate index.
        pred: usize,
    },
    /// A split names an attribute the schema does not have.
    AttrOutOfRange {
        /// Byte offset of the attribute byte.
        offset: usize,
        /// The out-of-range attribute id.
        attr: usize,
        /// Number of attributes in the schema.
        n: usize,
    },
    /// A split cut lies outside the attribute's domain: no value of the
    /// attribute could ever reach one side.
    CutOutOfDomain {
        /// Byte offset of the cut.
        offset: usize,
        /// The splitting attribute.
        attr: usize,
        /// The cut value.
        cut: u16,
        /// The attribute's domain size.
        domain: u16,
    },
    /// A split arm no value can reach, given the value ranges already
    /// established by the splits above it on the same path.
    DeadArm {
        /// Byte offset of the split node.
        offset: usize,
        /// The splitting attribute.
        attr: usize,
        /// The cut value.
        cut: u16,
        /// Which arm is unreachable (`"lo"` or `"hi"`).
        arm: &'static str,
    },
    /// The planner's claimed expected cost lies outside the certified
    /// `[best_case, worst_case]` interval — no distribution over tuples
    /// can produce it, so the claim (or the plan bytes) is corrupt.
    CostClaim {
        /// The claimed expected per-tuple cost.
        claimed: f64,
        /// Certified lower bound.
        best_case: f64,
        /// Certified upper bound.
        worst_case: f64,
    },
}

impl VerifyError {
    /// Stable lower-case class label, one per corruption class — used
    /// by JSON findings and the mutation-corpus coverage check.
    pub fn class(&self) -> &'static str {
        match self {
            VerifyError::Truncated { .. } => "truncated",
            VerifyError::UnknownTag { .. } => "unknown-tag",
            VerifyError::TrailingBytes { .. } => "trailing-bytes",
            VerifyError::Empty => "empty",
            VerifyError::PredOutOfRange { .. } => "pred-out-of-range",
            VerifyError::DuplicatePred { .. } => "duplicate-pred",
            VerifyError::AttrOutOfRange { .. } => "attr-out-of-range",
            VerifyError::CutOutOfDomain { .. } => "cut-out-of-domain",
            VerifyError::DeadArm { .. } => "dead-arm",
            VerifyError::CostClaim { .. } => "cost-claim",
        }
    }

    /// Byte offset of the failure, when the class has one.
    pub fn offset(&self) -> Option<usize> {
        match self {
            VerifyError::Truncated { offset, .. }
            | VerifyError::UnknownTag { offset, .. }
            | VerifyError::TrailingBytes { offset, .. }
            | VerifyError::PredOutOfRange { offset, .. }
            | VerifyError::DuplicatePred { offset, .. }
            | VerifyError::AttrOutOfRange { offset, .. }
            | VerifyError::CutOutOfDomain { offset, .. }
            | VerifyError::DeadArm { offset, .. } => Some(*offset),
            VerifyError::Empty | VerifyError::CostClaim { .. } => None,
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Truncated { offset, what } => {
                write!(f, "truncated at byte {offset}: {what}")
            }
            VerifyError::UnknownTag { offset, tag } => {
                write!(f, "unknown tag 0x{tag:02x} at byte {offset}")
            }
            VerifyError::TrailingBytes { offset, len } => {
                write!(f, "{len} unreachable byte(s) after the root subtree at byte {offset}")
            }
            VerifyError::Empty => write!(f, "empty plan: no root node"),
            VerifyError::PredOutOfRange { offset, pred, len } => {
                write!(f, "predicate index {pred} out of range at byte {offset} (query has {len})")
            }
            VerifyError::DuplicatePred { offset, pred } => {
                write!(f, "predicate {pred} evaluated twice on one path (second at byte {offset})")
            }
            VerifyError::AttrOutOfRange { offset, attr, n } => {
                write!(f, "split attribute {attr} out of range at byte {offset} (schema has {n})")
            }
            VerifyError::CutOutOfDomain { offset, attr, cut, domain } => {
                write!(
                    f,
                    "split cut {cut} outside attribute {attr}'s domain of {domain} at byte {offset}"
                )
            }
            VerifyError::DeadArm { offset, attr, cut, arm } => {
                write!(
                    f,
                    "dead {arm} arm at byte {offset}: split on attribute {attr} at cut {cut} is \
                     unreachable under the path's established ranges"
                )
            }
            VerifyError::CostClaim { claimed, best_case, worst_case } => {
                write!(
                    f,
                    "claimed expected cost {claimed} outside the certified bound \
                     [{best_case}, {worst_case}]"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Maps a verification failure onto the workspace error type, so the
/// engine layers can propagate it through `acqp_core::Result` paths.
impl From<VerifyError> for acqp_core::Error {
    fn from(e: VerifyError) -> acqp_core::Error {
        let offset = e.offset().unwrap_or(0);
        let what = match e {
            VerifyError::Truncated { what, .. } => what,
            VerifyError::UnknownTag { .. } => "unknown tag",
            VerifyError::TrailingBytes { .. } => "trailing bytes",
            VerifyError::Empty => "truncated",
            VerifyError::PredOutOfRange { .. } => "predicate index out of range",
            VerifyError::DuplicatePred { .. } => "predicate evaluated twice on one path",
            VerifyError::AttrOutOfRange { .. } => "attr out of range",
            VerifyError::CutOutOfDomain { .. } => "split cut outside attribute domain",
            VerifyError::DeadArm { .. } => "dead split arm",
            VerifyError::CostClaim { .. } => "claimed cost outside certified bound",
        };
        acqp_core::Error::BadWireFormat { offset, what }
    }
}
