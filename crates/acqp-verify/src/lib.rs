//! # acqp-verify — static verification of plan wire bytes
//!
//! A zero-dependency analyzer that certifies a serialized conditional
//! plan (`ζ(P)` wire format, `DESIGN.md` §9) **without executing it**:
//! no attribute is acquired, no tuple is touched. The verifier
//! abstractly interprets the bytecode in three passes, each total on
//! arbitrary input (typed errors, never panics — the bytes may come
//! straight off a corrupt checkpoint):
//!
//! 1. **Structural** ([`structural::check_structural`]) — every byte
//!    belongs to exactly one node of the grammar, nothing is truncated,
//!    nothing trails, and the walk terminates by a decreasing-offset
//!    argument.
//! 2. **Semantic** ([`semantic::check_semantic`]) — the plan is
//!    meaningful for a `(Query, Schema)` pair: predicate indices in
//!    range and unique per root-to-leaf path, split attributes in
//!    range, cuts inside their domains, and no dead split arms under
//!    the path's established value ranges.
//! 3. **Cost** ([`cost::path_bounds`]) — folds every root-to-leaf path
//!    with the executor's exact charge arithmetic into a certified
//!    [`CostBound`]; the planner's claimed `expected_cost` must land
//!    inside it.
//!
//! The product is a [`Certificate`]: proof-carrying metadata the
//! basestation attaches before dissemination, the recovery path demands
//! before trusting checkpointed bytes, and admission control uses in
//! place of trusted planner cost claims.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod cost;
pub mod error;
pub mod semantic;
pub mod structural;

pub use cost::CostBound;
pub use error::VerifyError;
pub use structural::Structure;

use acqp_core::costmodel::CostModel;
use acqp_core::{Estimator, Plan, Query, Schema};

/// Proof-carrying verification result for one wire plan.
///
/// Holding a `Certificate` means the bytes passed all three passes for
/// the given `(Query, Schema, CostModel)`: the plan can be interpreted
/// without bounds checks, and every per-tuple execution cost lies in
/// `bound`.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Shape facts from the structural pass.
    pub stats: Structure,
    /// Certified per-tuple cost interval from the cost pass.
    pub bound: CostBound,
}

impl Certificate {
    /// Expected per-tuple cost under `est`, computed from the decoded
    /// tree via the engine's Eq. 3 evaluator. Guaranteed (up to float
    /// rounding) to lie inside [`Self::bound`], since any expectation
    /// is a convex combination of root-to-leaf path costs.
    pub fn expected_under<E: Estimator>(
        &self,
        plan: &Plan,
        query: &Query,
        schema: &Schema,
        est: &E,
    ) -> f64 {
        acqp_core::expected_cost(plan, query, schema, est)
    }

    /// Checks the planner's claimed expected cost against the certified
    /// bound ([`CostBound::check_claim`]).
    pub fn check_claim(&self, claimed: f64) -> Result<(), VerifyError> {
        self.bound.check_claim(claimed)
    }
}

/// Runs all three passes under [`CostModel::PerAttribute`] — the model
/// the wire interpreter hardcodes. This is the entry point the engine
/// integration uses.
pub fn verify_wire(
    bytes: &[u8],
    query: &Query,
    schema: &Schema,
) -> Result<Certificate, VerifyError> {
    verify_wire_model(bytes, query, schema, &CostModel::PerAttribute)
}

/// Runs all three passes under an explicit cost model.
pub fn verify_wire_model(
    bytes: &[u8],
    query: &Query,
    schema: &Schema,
    model: &CostModel,
) -> Result<Certificate, VerifyError> {
    let stats = structural::check_structural(bytes)?;
    semantic::check_semantic(bytes, query, schema)?;
    let bound = cost::path_bounds(bytes, query, schema, model)?;
    Ok(Certificate { stats, bound })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::{Attribute, CountingEstimator, Dataset, Pred};

    fn setup() -> (Schema, Query, Dataset) {
        let schema =
            Schema::new(vec![Attribute::new("a", 4, 10.0), Attribute::new("b", 4, 20.0)]).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 2), Pred::in_range(1, 0, 2)]).unwrap();
        let mut rows = Vec::new();
        for a in 0..4u16 {
            for b in 0..4u16 {
                rows.push(vec![a, b]);
            }
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        (schema, query, data)
    }

    #[test]
    fn encoded_plan_verifies_and_claim_checks() {
        let (schema, query, data) = setup();
        let est = CountingEstimator::new(&data);
        let plan = acqp_core::GreedyPlanner::new(4).plan(&schema, &query, &est).unwrap();
        let wire = plan.encode();
        let cert = verify_wire(&wire, &query, &schema).unwrap();
        assert!(cert.stats.nodes >= 1);
        assert!(cert.bound.best_case <= cert.bound.worst_case);
        let claimed = acqp_core::expected_cost(&plan, &query, &schema, &est);
        cert.check_claim(claimed).unwrap();
        let ex = cert.expected_under(&plan, &query, &schema, &est);
        assert_eq!(ex, claimed);
    }

    #[test]
    fn garbage_is_rejected_with_typed_error() {
        let (schema, query, _) = setup();
        let err = verify_wire(&[0x42, 0x00], &query, &schema).unwrap_err();
        assert_eq!(err.class(), "unknown-tag");
    }
}
