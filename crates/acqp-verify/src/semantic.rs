//! Semantic pass: the plan is meaningful for one `(Query, Schema)`.
//!
//! Runs after [`crate::structural`], but re-checks byte availability
//! defensively all the same — the pass must be panic-free on arbitrary
//! input (it sits on the recovery path, where plan bytes come straight
//! off disk). It checks what the bytes *mean*:
//!
//! * every sequential-leaf predicate index is in the query,
//! * no predicate is evaluated twice on any root-to-leaf path
//!   (predicates only occur in leaves, so per-leaf uniqueness is
//!   exactly per-path uniqueness),
//! * every split attribute is in the schema,
//! * every split cut lies strictly inside the attribute's domain
//!   (`1 <= cut < k` — a cut of 0 or `>= k` decides nothing),
//! * no split arm is dead under the value ranges established by the
//!   splits above it: a nested split re-testing an attribute must cut
//!   inside the surviving range, else one arm is unreachable and its
//!   subtree is garbage the structural pass alone cannot see.
//!
//! The walk mirrors the structural one — explicit stack, wire order,
//! strictly increasing offset, so the same decreasing-offset
//! termination argument applies — and additionally threads the
//! per-path [`Ranges`] refinement exactly the way the planner's
//! subproblem recursion (§3.2) does.

use acqp_core::{Query, Range, Ranges, Schema};

use crate::error::VerifyError;

fn byte(bytes: &[u8], pos: usize, what: &'static str) -> Result<u8, VerifyError> {
    bytes.get(pos).copied().ok_or(VerifyError::Truncated { offset: pos, what })
}

/// Checks the plan against `query` and `schema`. Total on arbitrary
/// bytes: truncation and bad tags surface as typed errors, never
/// panics, even when the structural pass was skipped.
pub fn check_semantic(bytes: &[u8], query: &Query, schema: &Schema) -> Result<(), VerifyError> {
    if bytes.is_empty() {
        return Err(VerifyError::Empty);
    }
    let mut pos = 0usize;
    // Splits whose high arm is still unvisited: (arms remaining, the
    // ranges the high arm starts from).
    let mut pending: Vec<(u8, Ranges)> = Vec::new();
    let mut ranges = Ranges::root(schema);
    // Scratch for per-leaf duplicate detection, cleared between leaves.
    let mut seen = vec![false; query.len()];
    loop {
        let tag = byte(bytes, pos, "node tag")?;
        let mut leaf = true;
        match tag {
            0x00 | 0x01 => pos += 1,
            0x02 => {
                let len = byte(bytes, pos + 1, "seq length")? as usize;
                let body = bytes
                    .get(pos + 2..pos + 2 + len)
                    .ok_or(VerifyError::Truncated { offset: pos + 2, what: "seq body" })?;
                for (i, &pb) in body.iter().enumerate() {
                    let j = pb as usize;
                    // `seen` has one slot per predicate, so a missing
                    // slot is exactly an out-of-range index.
                    let Some(slot) = seen.get_mut(j) else {
                        return Err(VerifyError::PredOutOfRange {
                            offset: pos + 2 + i,
                            pred: j,
                            len: query.len(),
                        });
                    };
                    if *slot {
                        return Err(VerifyError::DuplicatePred { offset: pos + 2 + i, pred: j });
                    }
                    *slot = true;
                }
                for &pb in body {
                    if let Some(slot) = seen.get_mut(pb as usize) {
                        *slot = false;
                    }
                }
                pos += 2 + len;
            }
            0x03 => {
                let attr = byte(bytes, pos + 1, "split attr")? as usize;
                if attr >= schema.len() {
                    return Err(VerifyError::AttrOutOfRange {
                        offset: pos + 1,
                        attr,
                        n: schema.len(),
                    });
                }
                let c0 = byte(bytes, pos + 2, "split cut")?;
                let c1 = byte(bytes, pos + 3, "split cut")?;
                let cut = u16::from_le_bytes([c0, c1]);
                let k = schema.domain(attr);
                if cut == 0 || cut >= k {
                    return Err(VerifyError::CutOutOfDomain {
                        offset: pos + 2,
                        attr,
                        cut,
                        domain: k,
                    });
                }
                let r = ranges.get(attr);
                // The low arm holds values `< cut`, the high arm values
                // `>= cut`; each needs at least one surviving value.
                if cut <= r.lo() {
                    return Err(VerifyError::DeadArm { offset: pos, attr, cut, arm: "lo" });
                }
                if cut > r.hi() {
                    return Err(VerifyError::DeadArm { offset: pos, attr, cut, arm: "hi" });
                }
                let hi_ranges = ranges.with(attr, Range::new(cut, r.hi()));
                pending.push((1, hi_ranges));
                ranges = ranges.with(attr, Range::new(r.lo(), cut - 1));
                leaf = false;
                pos += 4;
            }
            _ => return Err(VerifyError::UnknownTag { offset: pos, tag }),
        }
        if leaf {
            loop {
                let Some(top) = pending.last_mut() else {
                    if pos != bytes.len() {
                        return Err(VerifyError::TrailingBytes {
                            offset: pos,
                            len: bytes.len() - pos,
                        });
                    }
                    return Ok(());
                };
                if top.0 > 0 {
                    top.0 -= 1;
                    ranges = top.1.clone();
                    break;
                }
                pending.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::{Attribute, Pred};

    fn setup() -> (Schema, Query) {
        let schema =
            Schema::new(vec![Attribute::new("a", 8, 10.0), Attribute::new("b", 4, 20.0)]).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 2, 5), Pred::not_in_range(1, 1, 2)]).unwrap();
        (schema, query)
    }

    #[test]
    fn accepts_well_formed() {
        let (schema, query) = setup();
        // split(a<4, seq[0,1], seq[1,0])
        let wire = [0x03, 0, 4, 0, 0x02, 2, 0, 1, 0x02, 2, 1, 0];
        assert_eq!(check_semantic(&wire, &query, &schema), Ok(()));
    }

    #[test]
    fn rejects_each_semantic_class() {
        let (schema, query) = setup();
        assert!(matches!(
            check_semantic(&[0x02, 1, 9], &query, &schema),
            Err(VerifyError::PredOutOfRange { pred: 9, .. })
        ));
        assert!(matches!(
            check_semantic(&[0x02, 2, 1, 1], &query, &schema),
            Err(VerifyError::DuplicatePred { pred: 1, .. })
        ));
        assert!(matches!(
            check_semantic(&[0x03, 9, 1, 0, 0x00, 0x01], &query, &schema),
            Err(VerifyError::AttrOutOfRange { attr: 9, .. })
        ));
        assert!(matches!(
            check_semantic(&[0x03, 0, 0, 0, 0x00, 0x01], &query, &schema),
            Err(VerifyError::CutOutOfDomain { cut: 0, .. })
        ));
        assert!(matches!(
            check_semantic(&[0x03, 1, 4, 0, 0x00, 0x01], &query, &schema),
            Err(VerifyError::CutOutOfDomain { cut: 4, domain: 4, .. })
        ));
        // Nested re-split of `a` at a cut outside the low arm's range.
        let dead = [0x03, 0, 3, 0, 0x03, 0, 5, 0, 0x00, 0x01, 0x01];
        assert!(matches!(
            check_semantic(&dead, &query, &schema),
            Err(VerifyError::DeadArm { arm: "hi", .. })
        ));
    }

    #[test]
    fn duplicate_detection_resets_between_leaves() {
        let (schema, query) = setup();
        // Two sibling leaves both naming predicate 0 is fine — they sit
        // on different root-to-leaf paths.
        let wire = [0x03, 0, 4, 0, 0x02, 1, 0, 0x02, 1, 0];
        assert_eq!(check_semantic(&wire, &query, &schema), Ok(()));
    }
}
