//! Structural pass: the bytes form exactly one well-formed subtree.
//!
//! The walk is an abstract interpretation of the wire grammar
//! (`DESIGN.md` §9): it visits nodes in wire order without fetching a
//! single attribute. Termination is by a decreasing-offset argument —
//! every node consumes at least one byte, so `bytes.len() - pos`
//! strictly decreases at each step and the loop runs at most
//! `bytes.len()` iterations. The traversal stack is explicit (no
//! recursion), so adversarially deep split chains cannot overflow the
//! call stack the way a recursive descent could.
//!
//! What the pass certifies:
//!
//! * every tag is in the grammar (`0x00..=0x03`),
//! * no node is truncated (leaf bodies and split headers fit),
//! * every byte is reachable: the root subtree consumes the buffer
//!   exactly — no trailing bytes an execution could never visit, and no
//!   overlap (nodes are consumed left to right, each byte once).

use crate::error::VerifyError;

/// Shape facts established by [`check_structural`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Structure {
    /// Total nodes (splits plus leaves).
    pub nodes: usize,
    /// Split nodes.
    pub splits: usize,
    /// Sequential leaves.
    pub seq_leaves: usize,
    /// Decided (accept/reject) leaves.
    pub decided_leaves: usize,
    /// Root-to-leaf paths (= leaves).
    pub paths: usize,
    /// Maximum split nesting depth (0 for a bare leaf).
    pub max_depth: usize,
    /// Total wire bytes.
    pub wire_len: usize,
}

/// Walks the buffer as one subtree, returning its shape, or the first
/// structural corruption found.
pub fn check_structural(bytes: &[u8]) -> Result<Structure, VerifyError> {
    if bytes.is_empty() {
        return Err(VerifyError::Empty);
    }
    let mut s = Structure {
        nodes: 0,
        splits: 0,
        seq_leaves: 0,
        decided_leaves: 0,
        paths: 0,
        max_depth: 0,
        wire_len: bytes.len(),
    };
    let mut pos = 0usize;
    // Children still unvisited at each enclosing split. `pos` strictly
    // increases every iteration, so the loop terminates after at most
    // `bytes.len()` nodes.
    let mut pending: Vec<u8> = Vec::new();
    loop {
        let tag =
            *bytes.get(pos).ok_or(VerifyError::Truncated { offset: pos, what: "node tag" })?;
        s.nodes += 1;
        s.max_depth = s.max_depth.max(pending.len());
        let mut leaf = true;
        match tag {
            0x00 | 0x01 => {
                s.decided_leaves += 1;
                pos += 1;
            }
            0x02 => {
                let len = *bytes
                    .get(pos + 1)
                    .ok_or(VerifyError::Truncated { offset: pos + 1, what: "seq length" })?
                    as usize;
                if bytes.get(pos + 2..pos + 2 + len).is_none() {
                    return Err(VerifyError::Truncated { offset: pos + 2, what: "seq body" });
                }
                s.seq_leaves += 1;
                pos += 2 + len;
            }
            0x03 => {
                if bytes.get(pos + 1..pos + 4).is_none() {
                    return Err(VerifyError::Truncated { offset: pos + 1, what: "split header" });
                }
                s.splits += 1;
                leaf = false;
                pending.push(2);
                pos += 4;
            }
            _ => return Err(VerifyError::UnknownTag { offset: pos, tag }),
        }
        if leaf {
            s.paths += 1;
            // Unwind completed subtrees; stop at the first split that
            // still has its high arm to visit.
            loop {
                match pending.last_mut() {
                    Some(n) if *n > 1 => {
                        *n -= 1;
                        break;
                    }
                    Some(_) => {
                        pending.pop();
                    }
                    None => {
                        if pos != bytes.len() {
                            return Err(VerifyError::TrailingBytes {
                                offset: pos,
                                len: bytes.len() - pos,
                            });
                        }
                        return Ok(s);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_and_splits_count() {
        // split(a<2, accept, seq[0]) — 4 + 1 + 3 bytes.
        let wire = [0x03, 0, 2, 0, 0x01, 0x02, 1, 0];
        let s = check_structural(&wire).unwrap();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.splits, 1);
        assert_eq!(s.decided_leaves, 1);
        assert_eq!(s.seq_leaves, 1);
        assert_eq!(s.paths, 2);
        assert_eq!(s.max_depth, 1);
    }

    #[test]
    fn corruption_classes() {
        assert_eq!(check_structural(&[]), Err(VerifyError::Empty));
        assert!(matches!(
            check_structural(&[0x07]),
            Err(VerifyError::UnknownTag { tag: 0x07, .. })
        ));
        assert!(matches!(check_structural(&[0x02, 3, 0]), Err(VerifyError::Truncated { .. })));
        assert!(matches!(check_structural(&[0x03, 0, 2]), Err(VerifyError::Truncated { .. })));
        assert!(matches!(
            check_structural(&[0x01, 0x00]),
            Err(VerifyError::TrailingBytes { offset: 1, len: 1 })
        ));
    }

    #[test]
    fn deep_nesting_does_not_recurse() {
        // 10_000 nested splits, low arm nested, high arm a leaf.
        let mut wire = Vec::new();
        for _ in 0..10_000 {
            wire.extend_from_slice(&[0x03, 0, 1, 0]);
        }
        wire.push(0x01);
        wire.extend(std::iter::repeat_n(0x00, 10_000));
        let s = check_structural(&wire).unwrap();
        assert_eq!(s.splits, 10_000);
        assert_eq!(s.max_depth, 10_000);
    }
}
