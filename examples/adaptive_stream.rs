//! §7 "Queries over data streams", using the `acqp-stream` crate: the
//! data distribution drifts, the [`AdaptivePlanner`] notices the running
//! plan's measured cost degrading past its tolerance, re-fits statistics
//! over its sliding window, and switches plans — with hysteresis so a
//! noisy batch cannot thrash.
//!
//! The stream alternates between two regimes (think summer/winter): the
//! correlation between the cheap conditioning attribute and the
//! expensive sensors *reverses*, so a frozen conditional plan slowly
//! loses its advantage — and the adaptive one wins it back.
//!
//! ```sh
//! cargo run --release --example adaptive_stream
//! ```

use acqp::prelude::*;
use acqp::stream::{Adaptation, AdaptivePlanner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regime-dependent tuple generator: in regime 0, `a` tracks `t` and `b`
/// tracks `1−t`; in regime 1 the roles flip.
fn tuple(rng: &mut StdRng, regime: usize) -> Vec<u16> {
    let t = u16::from(rng.gen_bool(0.5));
    let (a, b) = if regime == 0 { (t, 1 - t) } else { (1 - t, t) };
    vec![if rng.gen_bool(0.1) { 1 - a } else { a }, if rng.gen_bool(0.1) { 1 - b } else { b }, t]
}

fn main() -> Result<()> {
    let schema = Schema::new(vec![
        Attribute::new("a", 2, 100.0),
        Attribute::new("b", 2, 100.0),
        Attribute::new("t", 2, 1.0),
    ])?;
    let query = Query::checked(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)], &schema)?;

    let mut rng = StdRng::seed_from_u64(42);
    const WINDOW: usize = 600;
    const BATCH: usize = 300;
    const BATCHES: usize = 20;

    // The adaptive loop, plus a frozen copy of its first plan for
    // comparison.
    let mut adaptive =
        AdaptivePlanner::new(schema.clone(), query.clone(), GreedyPlanner::new(4), WINDOW, WINDOW)
            .with_drift_tolerance(0.1);
    // Warm the window in regime 0.
    for _ in 0..WINDOW {
        adaptive.ingest(tuple(&mut rng, 0))?;
    }
    let frozen = adaptive.plan().expect("initial plan built at window fill").clone();

    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>12}",
        "batch", "regime", "frozen cost", "adaptive cost", "adaptation"
    );
    let mut frozen_total = 0.0;
    let mut adaptive_total = 0.0;
    for batch in 0..BATCHES {
        let regime = usize::from(batch >= BATCHES / 2);
        let mut f_sum = 0.0;
        let mut a_sum = 0.0;
        let mut note = "";
        for _ in 0..BATCH {
            let t = tuple(&mut rng, regime);
            // Frozen plan measured on the same tuple.
            let snap = Dataset::from_rows(&schema, vec![t.clone()])?;
            let f = measure(&frozen, &query, &schema, &snap);
            assert!(f.all_correct);
            f_sum += f.mean_cost;
            let (out, adaptation) = adaptive.ingest(t)?;
            let out = out.expect("plan exists after warmup");
            a_sum += out.cost;
            match adaptation {
                Adaptation::ReplannedOnDrift => note = "drift -> replanned",
                Adaptation::CandidateRejected if note.is_empty() => note = "trigger rejected",
                _ => {}
            }
        }
        frozen_total += f_sum;
        adaptive_total += a_sum;
        println!(
            "{batch:>6} {regime:>8} {:>14.1} {:>14.1} {:>12}",
            f_sum / BATCH as f64,
            a_sum / BATCH as f64,
            note
        );
    }
    println!(
        "\ntotal cost: frozen {frozen_total:.0}, adaptive {adaptive_total:.0}  \
         (adaptive saves {:.1}% under drift; {} plan switch(es))",
        100.0 * (frozen_total - adaptive_total) / frozen_total,
        adaptive.replans
    );
    assert!(adaptive_total < frozen_total);
    Ok(())
}
