//! Full sensor-network pipeline on the Garden deployment (§2.5, Fig. 4):
//! the basestation learns from history, sizes the plan under the §2.4
//! communication-aware objective, disseminates the byte-code, and the
//! motes execute it epoch by epoch with full energy accounting.
//!
//! ```sh
//! cargo run --release --example garden_monitoring
//! ```

use acqp::core::prelude::*;
use acqp::data::garden::{self, GardenAttrs, GardenConfig};
use acqp::sensornet::{
    run_simulation, sim::fleet_from_trace, Basestation, EnergyModel, PlannerChoice,
};

fn main() -> Result<()> {
    let cfg = GardenConfig::garden5();
    let generated = garden::generate(&cfg);
    let (history, live) = generated.split(0.5);
    let schema = generated.schema.clone();
    let layout = GardenAttrs::new(cfg.motes);

    // "Report epochs where the whole forest sits in the mild band" —
    // moderate temperature and humidity at *every* mote. Which mote
    // leaves the band first depends on the time of day (sun-exposed
    // motes overshoot at noon, cold-air hollows undershoot at night), so
    // the best probing order is genuinely conditional.
    let temp_d = generated.discretizers[layout.temp(0)].as_ref().unwrap();
    let hum_d = generated.discretizers[layout.humidity(0)].as_ref().unwrap();
    let mut preds = Vec::new();
    for m in 0..cfg.motes {
        preds.push(Pred::in_range(layout.temp(m), temp_d.quantize(10.5), temp_d.quantize(17.5)));
        preds.push(Pred::in_range(layout.humidity(m), hum_d.quantize(50.0), hum_d.quantize(78.0)));
    }
    let query = Query::checked(preds, &schema)?;

    let bs = Basestation::new(schema.clone(), &history);
    let model = EnergyModel::mica_like().with_board(
        (0..cfg.motes).flat_map(|m| [layout.temp(m), layout.humidity(m)]).collect(),
        250.0,
    );

    // §2.4: choose the plan size by the α-penalized objective.
    let fleet_size = 4u16;
    let alpha = Basestation::alpha_for(&model, fleet_size as usize, live.len());
    let (k, planned) = bs.plan_query_sized(&query, alpha, &[0, 1, 2, 4, 8, 16])?;
    println!("alpha = {alpha:.5} cost-units/byte -> chose Heuristic-{k}");
    println!(
        "plan: {} splits, {} bytes on air, expected cost {:.1}/tuple\n",
        planned.plan.split_count(),
        planned.wire.len(),
        planned.expected_cost
    );

    // Run the fleet on the live window and compare against Naive.
    for (name, choice) in [
        ("Naive", PlannerChoice::Naive),
        ("CorrSeq", PlannerChoice::CorrSeq),
        (&format!("Heuristic-{k}"), PlannerChoice::Heuristic(k)),
    ] {
        let p = bs.plan_query(&query, choice, alpha)?;
        let mut motes = fleet_from_trace(&live, fleet_size);
        let report = run_simulation(&schema, &query, &p, &mut motes, &model, live.len());
        assert!(report.all_correct);
        println!(
            "{name:<14} sensing {:>10.0} uJ  board {:>8.0} uJ  radio {:>7.0} uJ  \
             total {:>10.0} uJ  ({} results)",
            report.network.sensing_uj,
            report.network.board_uj,
            report.network.radio_tx_uj + report.network.radio_rx_uj,
            report.network.total_uj(),
            report.results,
        );
    }
    Ok(())
}
