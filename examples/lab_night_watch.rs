//! The Fig. 9 scenario: "who is working in the lab at night?"
//!
//! The query looks for tuples that are simultaneously *bright*, *cool*
//! and *dry* — none of its predicates is very selective alone, but the
//! conjunction is rare (the lab is seldom lit while cold). The planner
//! discovers the paper's plan shape on its own: condition on the cheap
//! `hour` first, then on `nodeid` (nodes 1–6 sit in a zone unused at
//! night), choosing a different expensive-sensor order in each branch.
//!
//! ```sh
//! cargo run --release --example lab_night_watch
//! ```

use acqp::core::prelude::*;
use acqp::data::lab::{self, attrs, LabConfig};

fn main() -> Result<()> {
    let generated = lab::generate(&LabConfig::default());
    let (train, test) = generated.split(0.6);
    let schema = &generated.schema;

    // bright AND cool AND dry, in discretized units.
    let light_d = generated.discretizers[attrs::LIGHT].as_ref().unwrap();
    let temp_d = generated.discretizers[attrs::TEMP].as_ref().unwrap();
    let hum_d = generated.discretizers[attrs::HUMIDITY].as_ref().unwrap();
    let query = Query::checked(
        vec![
            // light >= ~350 lux (someone switched the lights on).
            Pred::in_range(attrs::LIGHT, light_d.quantize(350.0), light_d.bins() - 1),
            // temp <= ~21 C (night setback temperature).
            Pred::in_range(attrs::TEMP, 0, temp_d.quantize(21.0)),
            // humidity <= ~48 % (HVAC-dry air).
            Pred::in_range(attrs::HUMIDITY, 0, hum_d.quantize(48.0)),
        ],
        schema,
    )?;

    let est = CountingEstimator::with_ranges(&train, Ranges::root(schema));
    let naive = SeqPlanner::naive().plan(schema, &query, &est)?;
    let conditional =
        GreedyPlanner::new(6).with_base(SeqAlgorithm::Optimal).plan(schema, &query, &est)?;

    let naive_rep = measure(&naive, &query, schema, &test);
    let cond_rep = measure(&conditional, &query, schema, &test);
    assert!(naive_rep.all_correct && cond_rep.all_correct);

    println!("night-watch query: bright AND cool AND dry");
    println!("predicate selectivities on training data: {:?}\n", query.selectivities(&train));
    println!("Naive sequential plan   : {:>8.1} cost/tuple", naive_rep.mean_cost);
    println!("Conditional plan        : {:>8.1} cost/tuple", cond_rep.mean_cost);
    println!(
        "gain                    : {:>8.1} %  (the paper reports ~20% for its Fig. 9 plan)\n",
        100.0 * (naive_rep.mean_cost - cond_rep.mean_cost) / naive_rep.mean_cost
    );
    println!("conditional plan (cf. paper Fig. 9):\n{}", conditional.pretty(schema, &query));

    // Which cheap attributes did the plan condition on?
    let mut seen = Vec::new();
    collect_split_attrs(&conditional, &mut seen);
    let names: Vec<&str> = seen.iter().map(|&a| schema.attr(a).name()).collect();
    println!("conditioning attributes used: {names:?}");
    Ok(())
}

fn collect_split_attrs(plan: &Plan, out: &mut Vec<usize>) {
    if let Plan::Split { attr, lo, hi, .. } = plan {
        if !out.contains(attr) {
            out.push(*attr);
        }
        collect_split_attrs(lo, out);
        collect_split_attrs(hi, out);
    }
}
