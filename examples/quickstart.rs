//! Quickstart: generate correlated data, build plans with every
//! algorithm, and compare measured acquisition costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use acqp::core::prelude::*;
use acqp::data::synthetic::{self, SyntheticConfig};
use acqp::data::workload::synthetic_query;

fn main() -> Result<()> {
    // 10 binary attributes in correlated pairs (Γ = 1): each pair has a
    // cheap attribute (cost 1) that agrees with its expensive partner
    // (cost 100) on 80% of tuples.
    let cfg = SyntheticConfig::new(10, 1, 0.5).with_rows(20_000);
    let generated = synthetic::generate(&cfg);
    let (train, test) = generated.split(0.5);
    let schema = &generated.schema;

    // The benchmark query: every expensive attribute must equal 1.
    let query = synthetic_query(&cfg, schema);
    println!("query: {} predicates over expensive attributes\n", query.len());

    // Statistics come from counting the training window.
    let est = CountingEstimator::with_ranges(&train, Ranges::root(schema));

    // 1. Traditional optimizer: order by cost/(1 − selectivity).
    let naive = SeqPlanner::naive().plan(schema, &query, &est)?;
    // 2. Correlation-aware sequential order.
    let corrseq = SeqPlanner::auto().plan(schema, &query, &est)?;
    // 3. Conditional plan: observe cheap attributes, branch, and use a
    //    different predicate order per branch.
    let conditional = GreedyPlanner::new(8).plan(schema, &query, &est)?;

    println!("{:<28} {:>12} {:>10} {:>8}", "plan", "mean cost", "splits", "bytes");
    for (name, plan) in [
        ("Naive (traditional)", &naive),
        ("CorrSeq (sequential)", &corrseq),
        ("Conditional (Heuristic-8)", &conditional),
    ] {
        let report = measure(plan, &query, schema, &test);
        assert!(report.all_correct, "plans always compute the exact query answer");
        println!(
            "{name:<28} {:>12.1} {:>10} {:>8}",
            report.mean_cost,
            plan.split_count(),
            plan.wire_size()
        );
    }

    let naive_cost = measure(&naive, &query, schema, &test).mean_cost;
    let cond_cost = measure(&conditional, &query, schema, &test).mean_cost;
    println!(
        "\nconditional plan speedup over the traditional optimizer: {:.2}x",
        naive_cost / cond_cost
    );
    println!("\nconditional plan structure:\n{}", conditional.pretty(schema, &query));
    Ok(())
}
