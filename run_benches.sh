#!/usr/bin/env bash
# Records every figure/table reproduction into bench_output.txt.
#
# The exhaustive-planner benches (fig08a, fig08b) are the long pole; the
# ACQP_QUERIES knob trades queries-per-figure against wall time. The
# defaults below finish in ~10 minutes on a 16-core box; unset the env
# vars (paper-scale 95/20 queries) for a fuller run.
set -euo pipefail
cd "$(dirname "$0")"
out=bench_output.txt
: >"$out"

run() {
  echo "### $*" | tee -a "$out"
  "$@" 2>&1 | tee -a "$out"
  echo | tee -a "$out"
}

run cargo bench -p acqp-bench --bench fig01_lab_correlation
run cargo bench -p acqp-bench --bench fig02_motivating_example
run cargo bench -p acqp-bench --bench fig03_plan_enumeration
run env ACQP_QUERIES=${ACQP_QUERIES_FIG8A:-24} \
  cargo bench -p acqp-bench --bench fig08a_lab_quality
run env ACQP_QUERIES=${ACQP_QUERIES_FIG8B:-10} \
  cargo bench -p acqp-bench --bench fig08b_spsf_sweep
run cargo bench -p acqp-bench --bench fig08c_gain_cdf
run cargo bench -p acqp-bench --bench fig09_plan_study
run cargo bench -p acqp-bench --bench fig10_garden5
run cargo bench -p acqp-bench --bench fig11_garden11
run cargo bench -p acqp-bench --bench fig12_synthetic
run cargo bench -p acqp-bench --bench exists_queries
run cargo bench -p acqp-bench --bench ablations
run cargo bench -p acqp-bench --bench ablation_plan_size
run cargo bench -p acqp-bench --bench estimator_ops
run cargo bench -p acqp-bench --bench scalability
run cargo bench -p acqp-bench --bench fault_sweep
run cargo bench -p acqp-bench --bench crash_recovery
run cargo bench -p acqp-bench --bench vectorized
run cargo bench -p acqp-bench --bench serve
run cargo bench -p acqp-bench --bench serve_faults
run cargo bench -p acqp-bench --bench verify
echo "ALL BENCHES RECORDED" | tee -a "$out"
