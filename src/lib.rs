//! # acqp — correlation-aware acquisitional query processing
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *"Exploiting Correlated Attributes in Acquisitional Query Processing"*
//! (Deshpande, Guestrin, Hong, Madden — ICDE 2005).
//!
//! * [`core`] — the paper's contribution: conditional plans, cost model,
//!   probability estimation and all planners.
//! * [`data`] — dataset substrates: Lab, Garden and Babu-et-al synthetic
//!   sensor-trace generators, CSV I/O.
//! * [`gm`] — §7 extension: Chow–Liu tree graphical-model estimation.
//! * [`obs`] — observability: zero-dependency spans, counters and
//!   histograms recorded by the planners, executor and simulator.
//! * [`persist`] — crash safety: versioned, checksummed basestation
//!   snapshots plus a write-ahead log with idempotent replay.
//! * [`sensornet`] — execution substrate: motes, energy accounting,
//!   radio costs, basestation planning, plan byte-code interpreter.
//! * [`serve`] — the long-running multi-query service: concurrent
//!   admission over one fleet, shared acquisitions, signature-keyed
//!   plan caching with drift-triggered invalidation.
//! * [`stream`] — §7 extension: sliding-window statistics, drift
//!   detection and automatic re-planning over data streams.
//! * [`verify`] — static verification: structural, semantic and cost
//!   certification of plan wire bytes without executing them.
//!
//! See `examples/` for runnable end-to-end scenarios; start with
//! `cargo run --release --example quickstart`.

#![warn(missing_docs)]
// Determinism tests assert bitwise-equal floats on purpose; the
// workspace-level `float_cmp` warning stays on for library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
pub use acqp_core as core;
pub use acqp_data as data;
pub use acqp_gm as gm;
pub use acqp_obs as obs;
pub use acqp_persist as persist;
pub use acqp_sensornet as sensornet;
pub use acqp_serve as serve;
pub use acqp_stream as stream;
pub use acqp_verify as verify;

/// Everything most programs need: the core prelude plus generators and
/// the sensornet front door.
pub mod prelude {
    pub use acqp_core::prelude::*;
    pub use acqp_data::garden::GardenConfig;
    pub use acqp_data::lab::LabConfig;
    pub use acqp_data::synthetic::SyntheticConfig;
    pub use acqp_data::Generated;
    pub use acqp_gm::{ChowLiuTree, GmEstimator};
    pub use acqp_obs::{MemorySink, NoopSink, Recorder, Snapshot};
    pub use acqp_sensornet::{Basestation, EnergyModel, PlannerChoice, Topology};
    pub use acqp_stream::{AdaptivePlanner, SlidingWindow};
}
