/root/repo/target/debug/deps/acqp-35a9a85ef69165c4.d: src/lib.rs

/root/repo/target/debug/deps/libacqp-35a9a85ef69165c4.rlib: src/lib.rs

/root/repo/target/debug/deps/libacqp-35a9a85ef69165c4.rmeta: src/lib.rs

src/lib.rs:
