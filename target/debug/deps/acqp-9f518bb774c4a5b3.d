/root/repo/target/debug/deps/acqp-9f518bb774c4a5b3.d: src/lib.rs

/root/repo/target/debug/deps/acqp-9f518bb774c4a5b3: src/lib.rs

src/lib.rs:
