/root/repo/target/debug/deps/acqp_data-d75da2e1fca705f8.d: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs

/root/repo/target/debug/deps/libacqp_data-d75da2e1fca705f8.rlib: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs

/root/repo/target/debug/deps/libacqp_data-d75da2e1fca705f8.rmeta: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs

crates/acqp-data/src/lib.rs:
crates/acqp-data/src/csv.rs:
crates/acqp-data/src/garden.rs:
crates/acqp-data/src/lab.rs:
crates/acqp-data/src/rng.rs:
crates/acqp-data/src/schema_file.rs:
crates/acqp-data/src/synthetic.rs:
crates/acqp-data/src/workload.rs:
