/root/repo/target/debug/deps/acqp_gm-e9ddbe0ce945a7c9.d: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

/root/repo/target/debug/deps/libacqp_gm-e9ddbe0ce945a7c9.rlib: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

/root/repo/target/debug/deps/libacqp_gm-e9ddbe0ce945a7c9.rmeta: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

crates/acqp-gm/src/lib.rs:
crates/acqp-gm/src/estimator.rs:
crates/acqp-gm/src/tree.rs:
