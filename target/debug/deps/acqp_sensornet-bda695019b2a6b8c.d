/root/repo/target/debug/deps/acqp_sensornet-bda695019b2a6b8c.d: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

/root/repo/target/debug/deps/libacqp_sensornet-bda695019b2a6b8c.rlib: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

/root/repo/target/debug/deps/libacqp_sensornet-bda695019b2a6b8c.rmeta: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

crates/acqp-sensornet/src/lib.rs:
crates/acqp-sensornet/src/basestation.rs:
crates/acqp-sensornet/src/energy.rs:
crates/acqp-sensornet/src/interp.rs:
crates/acqp-sensornet/src/mote.rs:
crates/acqp-sensornet/src/sim.rs:
crates/acqp-sensornet/src/topology.rs:
