/root/repo/target/debug/deps/acqp_stream-d1f8e0d32516af67.d: crates/acqp-stream/src/lib.rs

/root/repo/target/debug/deps/libacqp_stream-d1f8e0d32516af67.rlib: crates/acqp-stream/src/lib.rs

/root/repo/target/debug/deps/libacqp_stream-d1f8e0d32516af67.rmeta: crates/acqp-stream/src/lib.rs

crates/acqp-stream/src/lib.rs:
