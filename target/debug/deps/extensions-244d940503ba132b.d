/root/repo/target/debug/deps/extensions-244d940503ba132b.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-244d940503ba132b: tests/extensions.rs

tests/extensions.rs:
