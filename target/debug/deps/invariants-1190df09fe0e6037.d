/root/repo/target/debug/deps/invariants-1190df09fe0e6037.d: tests/invariants.rs tests/common/mod.rs

/root/repo/target/debug/deps/invariants-1190df09fe0e6037: tests/invariants.rs tests/common/mod.rs

tests/invariants.rs:
tests/common/mod.rs:
