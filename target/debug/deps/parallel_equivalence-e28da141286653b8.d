/root/repo/target/debug/deps/parallel_equivalence-e28da141286653b8.d: tests/parallel_equivalence.rs tests/common/mod.rs

/root/repo/target/debug/deps/parallel_equivalence-e28da141286653b8: tests/parallel_equivalence.rs tests/common/mod.rs

tests/parallel_equivalence.rs:
tests/common/mod.rs:
