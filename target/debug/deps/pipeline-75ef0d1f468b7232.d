/root/repo/target/debug/deps/pipeline-75ef0d1f468b7232.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-75ef0d1f468b7232: tests/pipeline.rs

tests/pipeline.rs:
