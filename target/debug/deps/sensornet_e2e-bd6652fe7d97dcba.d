/root/repo/target/debug/deps/sensornet_e2e-bd6652fe7d97dcba.d: tests/sensornet_e2e.rs

/root/repo/target/debug/deps/sensornet_e2e-bd6652fe7d97dcba: tests/sensornet_e2e.rs

tests/sensornet_e2e.rs:
