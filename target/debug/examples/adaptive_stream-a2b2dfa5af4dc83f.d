/root/repo/target/debug/examples/adaptive_stream-a2b2dfa5af4dc83f.d: examples/adaptive_stream.rs

/root/repo/target/debug/examples/adaptive_stream-a2b2dfa5af4dc83f: examples/adaptive_stream.rs

examples/adaptive_stream.rs:
