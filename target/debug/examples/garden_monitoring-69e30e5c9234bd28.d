/root/repo/target/debug/examples/garden_monitoring-69e30e5c9234bd28.d: examples/garden_monitoring.rs

/root/repo/target/debug/examples/garden_monitoring-69e30e5c9234bd28: examples/garden_monitoring.rs

examples/garden_monitoring.rs:
