/root/repo/target/debug/examples/lab_night_watch-7736ebffdd0af289.d: examples/lab_night_watch.rs

/root/repo/target/debug/examples/lab_night_watch-7736ebffdd0af289: examples/lab_night_watch.rs

examples/lab_night_watch.rs:
