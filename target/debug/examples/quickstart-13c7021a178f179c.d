/root/repo/target/debug/examples/quickstart-13c7021a178f179c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-13c7021a178f179c: examples/quickstart.rs

examples/quickstart.rs:
