/root/repo/target/release/deps/ablation_plan_size-54cd85ae55c62da8.d: crates/acqp-bench/benches/ablation_plan_size.rs

/root/repo/target/release/deps/ablation_plan_size-54cd85ae55c62da8: crates/acqp-bench/benches/ablation_plan_size.rs

crates/acqp-bench/benches/ablation_plan_size.rs:
