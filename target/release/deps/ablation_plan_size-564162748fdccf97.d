/root/repo/target/release/deps/ablation_plan_size-564162748fdccf97.d: crates/acqp-bench/benches/ablation_plan_size.rs Cargo.toml

/root/repo/target/release/deps/libablation_plan_size-564162748fdccf97.rmeta: crates/acqp-bench/benches/ablation_plan_size.rs Cargo.toml

crates/acqp-bench/benches/ablation_plan_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
