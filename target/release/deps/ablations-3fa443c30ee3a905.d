/root/repo/target/release/deps/ablations-3fa443c30ee3a905.d: crates/acqp-bench/benches/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-3fa443c30ee3a905.rmeta: crates/acqp-bench/benches/ablations.rs Cargo.toml

crates/acqp-bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
