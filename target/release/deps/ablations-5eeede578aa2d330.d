/root/repo/target/release/deps/ablations-5eeede578aa2d330.d: crates/acqp-bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-5eeede578aa2d330: crates/acqp-bench/benches/ablations.rs

crates/acqp-bench/benches/ablations.rs:
