/root/repo/target/release/deps/acqp-0b9caeaf03f02888.d: src/lib.rs

/root/repo/target/release/deps/libacqp-0b9caeaf03f02888.rlib: src/lib.rs

/root/repo/target/release/deps/libacqp-0b9caeaf03f02888.rmeta: src/lib.rs

src/lib.rs:
