/root/repo/target/release/deps/acqp-139245a4f735ca0b.d: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs Cargo.toml

/root/repo/target/release/deps/libacqp-139245a4f735ca0b.rmeta: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs Cargo.toml

crates/acqp-cli/src/main.rs:
crates/acqp-cli/src/args.rs:
crates/acqp-cli/src/datasets.rs:
crates/acqp-cli/src/query_parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
