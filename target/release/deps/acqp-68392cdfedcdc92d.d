/root/repo/target/release/deps/acqp-68392cdfedcdc92d.d: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs

/root/repo/target/release/deps/acqp-68392cdfedcdc92d: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs

crates/acqp-cli/src/main.rs:
crates/acqp-cli/src/args.rs:
crates/acqp-cli/src/datasets.rs:
crates/acqp-cli/src/query_parse.rs:
