/root/repo/target/release/deps/acqp-6eef674f6ed35046.d: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs Cargo.toml

/root/repo/target/release/deps/libacqp-6eef674f6ed35046.rmeta: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs Cargo.toml

crates/acqp-cli/src/main.rs:
crates/acqp-cli/src/args.rs:
crates/acqp-cli/src/datasets.rs:
crates/acqp-cli/src/query_parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
