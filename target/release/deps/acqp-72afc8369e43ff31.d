/root/repo/target/release/deps/acqp-72afc8369e43ff31.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libacqp-72afc8369e43ff31.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
