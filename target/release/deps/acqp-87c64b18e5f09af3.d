/root/repo/target/release/deps/acqp-87c64b18e5f09af3.d: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs

/root/repo/target/release/deps/acqp-87c64b18e5f09af3: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs

crates/acqp-cli/src/main.rs:
crates/acqp-cli/src/args.rs:
crates/acqp-cli/src/datasets.rs:
crates/acqp-cli/src/query_parse.rs:
