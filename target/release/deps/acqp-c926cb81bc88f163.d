/root/repo/target/release/deps/acqp-c926cb81bc88f163.d: src/lib.rs

/root/repo/target/release/deps/acqp-c926cb81bc88f163: src/lib.rs

src/lib.rs:
