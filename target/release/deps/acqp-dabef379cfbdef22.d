/root/repo/target/release/deps/acqp-dabef379cfbdef22.d: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs

/root/repo/target/release/deps/acqp-dabef379cfbdef22: crates/acqp-cli/src/main.rs crates/acqp-cli/src/args.rs crates/acqp-cli/src/datasets.rs crates/acqp-cli/src/query_parse.rs

crates/acqp-cli/src/main.rs:
crates/acqp-cli/src/args.rs:
crates/acqp-cli/src/datasets.rs:
crates/acqp-cli/src/query_parse.rs:
