/root/repo/target/release/deps/acqp-dac8d34dfed95309.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libacqp-dac8d34dfed95309.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
