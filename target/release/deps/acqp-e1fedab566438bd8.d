/root/repo/target/release/deps/acqp-e1fedab566438bd8.d: src/lib.rs

/root/repo/target/release/deps/libacqp-e1fedab566438bd8.rlib: src/lib.rs

/root/repo/target/release/deps/libacqp-e1fedab566438bd8.rmeta: src/lib.rs

src/lib.rs:
