/root/repo/target/release/deps/acqp-fa3f700928b74095.d: src/lib.rs

/root/repo/target/release/deps/acqp-fa3f700928b74095: src/lib.rs

src/lib.rs:
