/root/repo/target/release/deps/acqp_bench-482d82da956a1f33.d: crates/acqp-bench/src/lib.rs

/root/repo/target/release/deps/libacqp_bench-482d82da956a1f33.rlib: crates/acqp-bench/src/lib.rs

/root/repo/target/release/deps/libacqp_bench-482d82da956a1f33.rmeta: crates/acqp-bench/src/lib.rs

crates/acqp-bench/src/lib.rs:
