/root/repo/target/release/deps/acqp_bench-6f04ba34749d47bd.d: crates/acqp-bench/src/lib.rs

/root/repo/target/release/deps/acqp_bench-6f04ba34749d47bd: crates/acqp-bench/src/lib.rs

crates/acqp-bench/src/lib.rs:
