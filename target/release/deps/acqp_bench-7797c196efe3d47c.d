/root/repo/target/release/deps/acqp_bench-7797c196efe3d47c.d: crates/acqp-bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libacqp_bench-7797c196efe3d47c.rmeta: crates/acqp-bench/src/lib.rs Cargo.toml

crates/acqp-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
