/root/repo/target/release/deps/acqp_bench-844808c2e85d91fb.d: crates/acqp-bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libacqp_bench-844808c2e85d91fb.rmeta: crates/acqp-bench/src/lib.rs Cargo.toml

crates/acqp-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
