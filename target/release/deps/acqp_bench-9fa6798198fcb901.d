/root/repo/target/release/deps/acqp_bench-9fa6798198fcb901.d: crates/acqp-bench/src/lib.rs

/root/repo/target/release/deps/acqp_bench-9fa6798198fcb901: crates/acqp-bench/src/lib.rs

crates/acqp-bench/src/lib.rs:
