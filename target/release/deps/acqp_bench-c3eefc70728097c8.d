/root/repo/target/release/deps/acqp_bench-c3eefc70728097c8.d: crates/acqp-bench/src/lib.rs

/root/repo/target/release/deps/libacqp_bench-c3eefc70728097c8.rlib: crates/acqp-bench/src/lib.rs

/root/repo/target/release/deps/libacqp_bench-c3eefc70728097c8.rmeta: crates/acqp-bench/src/lib.rs

crates/acqp-bench/src/lib.rs:
