/root/repo/target/release/deps/acqp_core-3daaa208bb2923f4.d: crates/acqp-core/src/lib.rs crates/acqp-core/src/attr.rs crates/acqp-core/src/cost.rs crates/acqp-core/src/costmodel.rs crates/acqp-core/src/dataset.rs crates/acqp-core/src/error.rs crates/acqp-core/src/exec.rs crates/acqp-core/src/exists.rs crates/acqp-core/src/explain.rs crates/acqp-core/src/plan.rs crates/acqp-core/src/planner/mod.rs crates/acqp-core/src/planner/enumerate.rs crates/acqp-core/src/planner/exhaustive.rs crates/acqp-core/src/planner/greedy.rs crates/acqp-core/src/planner/seq.rs crates/acqp-core/src/planner/spsf.rs crates/acqp-core/src/prob/mod.rs crates/acqp-core/src/prob/counting.rs crates/acqp-core/src/prob/independence.rs crates/acqp-core/src/prob/truth.rs crates/acqp-core/src/query.rs crates/acqp-core/src/range.rs

/root/repo/target/release/deps/acqp_core-3daaa208bb2923f4: crates/acqp-core/src/lib.rs crates/acqp-core/src/attr.rs crates/acqp-core/src/cost.rs crates/acqp-core/src/costmodel.rs crates/acqp-core/src/dataset.rs crates/acqp-core/src/error.rs crates/acqp-core/src/exec.rs crates/acqp-core/src/exists.rs crates/acqp-core/src/explain.rs crates/acqp-core/src/plan.rs crates/acqp-core/src/planner/mod.rs crates/acqp-core/src/planner/enumerate.rs crates/acqp-core/src/planner/exhaustive.rs crates/acqp-core/src/planner/greedy.rs crates/acqp-core/src/planner/seq.rs crates/acqp-core/src/planner/spsf.rs crates/acqp-core/src/prob/mod.rs crates/acqp-core/src/prob/counting.rs crates/acqp-core/src/prob/independence.rs crates/acqp-core/src/prob/truth.rs crates/acqp-core/src/query.rs crates/acqp-core/src/range.rs

crates/acqp-core/src/lib.rs:
crates/acqp-core/src/attr.rs:
crates/acqp-core/src/cost.rs:
crates/acqp-core/src/costmodel.rs:
crates/acqp-core/src/dataset.rs:
crates/acqp-core/src/error.rs:
crates/acqp-core/src/exec.rs:
crates/acqp-core/src/exists.rs:
crates/acqp-core/src/explain.rs:
crates/acqp-core/src/plan.rs:
crates/acqp-core/src/planner/mod.rs:
crates/acqp-core/src/planner/enumerate.rs:
crates/acqp-core/src/planner/exhaustive.rs:
crates/acqp-core/src/planner/greedy.rs:
crates/acqp-core/src/planner/seq.rs:
crates/acqp-core/src/planner/spsf.rs:
crates/acqp-core/src/prob/mod.rs:
crates/acqp-core/src/prob/counting.rs:
crates/acqp-core/src/prob/independence.rs:
crates/acqp-core/src/prob/truth.rs:
crates/acqp-core/src/query.rs:
crates/acqp-core/src/range.rs:
