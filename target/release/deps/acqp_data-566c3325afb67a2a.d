/root/repo/target/release/deps/acqp_data-566c3325afb67a2a.d: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs

/root/repo/target/release/deps/acqp_data-566c3325afb67a2a: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs

crates/acqp-data/src/lib.rs:
crates/acqp-data/src/csv.rs:
crates/acqp-data/src/garden.rs:
crates/acqp-data/src/lab.rs:
crates/acqp-data/src/rng.rs:
crates/acqp-data/src/schema_file.rs:
crates/acqp-data/src/synthetic.rs:
crates/acqp-data/src/workload.rs:
