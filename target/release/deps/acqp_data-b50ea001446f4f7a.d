/root/repo/target/release/deps/acqp_data-b50ea001446f4f7a.d: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libacqp_data-b50ea001446f4f7a.rmeta: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs Cargo.toml

crates/acqp-data/src/lib.rs:
crates/acqp-data/src/csv.rs:
crates/acqp-data/src/garden.rs:
crates/acqp-data/src/lab.rs:
crates/acqp-data/src/rng.rs:
crates/acqp-data/src/schema_file.rs:
crates/acqp-data/src/synthetic.rs:
crates/acqp-data/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
