/root/repo/target/release/deps/acqp_data-c2ee8fcdc05b2421.d: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs

/root/repo/target/release/deps/acqp_data-c2ee8fcdc05b2421: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs

crates/acqp-data/src/lib.rs:
crates/acqp-data/src/csv.rs:
crates/acqp-data/src/garden.rs:
crates/acqp-data/src/lab.rs:
crates/acqp-data/src/rng.rs:
crates/acqp-data/src/schema_file.rs:
crates/acqp-data/src/synthetic.rs:
crates/acqp-data/src/workload.rs:
