/root/repo/target/release/deps/acqp_data-f736d826154908ba.d: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libacqp_data-f736d826154908ba.rmeta: crates/acqp-data/src/lib.rs crates/acqp-data/src/csv.rs crates/acqp-data/src/garden.rs crates/acqp-data/src/lab.rs crates/acqp-data/src/rng.rs crates/acqp-data/src/schema_file.rs crates/acqp-data/src/synthetic.rs crates/acqp-data/src/workload.rs Cargo.toml

crates/acqp-data/src/lib.rs:
crates/acqp-data/src/csv.rs:
crates/acqp-data/src/garden.rs:
crates/acqp-data/src/lab.rs:
crates/acqp-data/src/rng.rs:
crates/acqp-data/src/schema_file.rs:
crates/acqp-data/src/synthetic.rs:
crates/acqp-data/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
