/root/repo/target/release/deps/acqp_gm-1acacd255dc64c10.d: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs Cargo.toml

/root/repo/target/release/deps/libacqp_gm-1acacd255dc64c10.rmeta: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs Cargo.toml

crates/acqp-gm/src/lib.rs:
crates/acqp-gm/src/estimator.rs:
crates/acqp-gm/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
