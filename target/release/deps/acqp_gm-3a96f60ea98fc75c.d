/root/repo/target/release/deps/acqp_gm-3a96f60ea98fc75c.d: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

/root/repo/target/release/deps/libacqp_gm-3a96f60ea98fc75c.rlib: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

/root/repo/target/release/deps/libacqp_gm-3a96f60ea98fc75c.rmeta: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

crates/acqp-gm/src/lib.rs:
crates/acqp-gm/src/estimator.rs:
crates/acqp-gm/src/tree.rs:
