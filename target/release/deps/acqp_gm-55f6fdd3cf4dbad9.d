/root/repo/target/release/deps/acqp_gm-55f6fdd3cf4dbad9.d: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

/root/repo/target/release/deps/acqp_gm-55f6fdd3cf4dbad9: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

crates/acqp-gm/src/lib.rs:
crates/acqp-gm/src/estimator.rs:
crates/acqp-gm/src/tree.rs:
