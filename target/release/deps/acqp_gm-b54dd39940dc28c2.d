/root/repo/target/release/deps/acqp_gm-b54dd39940dc28c2.d: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

/root/repo/target/release/deps/acqp_gm-b54dd39940dc28c2: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

crates/acqp-gm/src/lib.rs:
crates/acqp-gm/src/estimator.rs:
crates/acqp-gm/src/tree.rs:
