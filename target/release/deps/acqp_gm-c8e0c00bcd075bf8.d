/root/repo/target/release/deps/acqp_gm-c8e0c00bcd075bf8.d: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

/root/repo/target/release/deps/libacqp_gm-c8e0c00bcd075bf8.rlib: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

/root/repo/target/release/deps/libacqp_gm-c8e0c00bcd075bf8.rmeta: crates/acqp-gm/src/lib.rs crates/acqp-gm/src/estimator.rs crates/acqp-gm/src/tree.rs

crates/acqp-gm/src/lib.rs:
crates/acqp-gm/src/estimator.rs:
crates/acqp-gm/src/tree.rs:
