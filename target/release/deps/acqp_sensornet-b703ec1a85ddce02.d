/root/repo/target/release/deps/acqp_sensornet-b703ec1a85ddce02.d: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

/root/repo/target/release/deps/acqp_sensornet-b703ec1a85ddce02: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

crates/acqp-sensornet/src/lib.rs:
crates/acqp-sensornet/src/basestation.rs:
crates/acqp-sensornet/src/energy.rs:
crates/acqp-sensornet/src/interp.rs:
crates/acqp-sensornet/src/mote.rs:
crates/acqp-sensornet/src/sim.rs:
crates/acqp-sensornet/src/topology.rs:
