/root/repo/target/release/deps/acqp_sensornet-d64c9383c0ff399b.d: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

/root/repo/target/release/deps/acqp_sensornet-d64c9383c0ff399b: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

crates/acqp-sensornet/src/lib.rs:
crates/acqp-sensornet/src/basestation.rs:
crates/acqp-sensornet/src/energy.rs:
crates/acqp-sensornet/src/interp.rs:
crates/acqp-sensornet/src/mote.rs:
crates/acqp-sensornet/src/sim.rs:
crates/acqp-sensornet/src/topology.rs:
