/root/repo/target/release/deps/acqp_sensornet-dfcfb6323f2fec28.d: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs Cargo.toml

/root/repo/target/release/deps/libacqp_sensornet-dfcfb6323f2fec28.rmeta: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs Cargo.toml

crates/acqp-sensornet/src/lib.rs:
crates/acqp-sensornet/src/basestation.rs:
crates/acqp-sensornet/src/energy.rs:
crates/acqp-sensornet/src/interp.rs:
crates/acqp-sensornet/src/mote.rs:
crates/acqp-sensornet/src/sim.rs:
crates/acqp-sensornet/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
