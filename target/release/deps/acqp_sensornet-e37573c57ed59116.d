/root/repo/target/release/deps/acqp_sensornet-e37573c57ed59116.d: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

/root/repo/target/release/deps/libacqp_sensornet-e37573c57ed59116.rlib: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

/root/repo/target/release/deps/libacqp_sensornet-e37573c57ed59116.rmeta: crates/acqp-sensornet/src/lib.rs crates/acqp-sensornet/src/basestation.rs crates/acqp-sensornet/src/energy.rs crates/acqp-sensornet/src/interp.rs crates/acqp-sensornet/src/mote.rs crates/acqp-sensornet/src/sim.rs crates/acqp-sensornet/src/topology.rs

crates/acqp-sensornet/src/lib.rs:
crates/acqp-sensornet/src/basestation.rs:
crates/acqp-sensornet/src/energy.rs:
crates/acqp-sensornet/src/interp.rs:
crates/acqp-sensornet/src/mote.rs:
crates/acqp-sensornet/src/sim.rs:
crates/acqp-sensornet/src/topology.rs:
