/root/repo/target/release/deps/acqp_stream-02162ffa4b19fcbc.d: crates/acqp-stream/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libacqp_stream-02162ffa4b19fcbc.rmeta: crates/acqp-stream/src/lib.rs Cargo.toml

crates/acqp-stream/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
