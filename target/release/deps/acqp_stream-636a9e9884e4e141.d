/root/repo/target/release/deps/acqp_stream-636a9e9884e4e141.d: crates/acqp-stream/src/lib.rs

/root/repo/target/release/deps/acqp_stream-636a9e9884e4e141: crates/acqp-stream/src/lib.rs

crates/acqp-stream/src/lib.rs:
