/root/repo/target/release/deps/acqp_stream-6e7a90b21b59f123.d: crates/acqp-stream/src/lib.rs

/root/repo/target/release/deps/acqp_stream-6e7a90b21b59f123: crates/acqp-stream/src/lib.rs

crates/acqp-stream/src/lib.rs:
