/root/repo/target/release/deps/acqp_stream-6fedad6952629bfd.d: crates/acqp-stream/src/lib.rs

/root/repo/target/release/deps/libacqp_stream-6fedad6952629bfd.rlib: crates/acqp-stream/src/lib.rs

/root/repo/target/release/deps/libacqp_stream-6fedad6952629bfd.rmeta: crates/acqp-stream/src/lib.rs

crates/acqp-stream/src/lib.rs:
