/root/repo/target/release/deps/acqp_stream-b25fb3ee2e6066ab.d: crates/acqp-stream/src/lib.rs

/root/repo/target/release/deps/libacqp_stream-b25fb3ee2e6066ab.rlib: crates/acqp-stream/src/lib.rs

/root/repo/target/release/deps/libacqp_stream-b25fb3ee2e6066ab.rmeta: crates/acqp-stream/src/lib.rs

crates/acqp-stream/src/lib.rs:
