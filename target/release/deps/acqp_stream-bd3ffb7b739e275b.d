/root/repo/target/release/deps/acqp_stream-bd3ffb7b739e275b.d: crates/acqp-stream/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libacqp_stream-bd3ffb7b739e275b.rmeta: crates/acqp-stream/src/lib.rs Cargo.toml

crates/acqp-stream/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
