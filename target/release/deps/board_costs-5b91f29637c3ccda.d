/root/repo/target/release/deps/board_costs-5b91f29637c3ccda.d: crates/acqp-core/tests/board_costs.rs

/root/repo/target/release/deps/board_costs-5b91f29637c3ccda: crates/acqp-core/tests/board_costs.rs

crates/acqp-core/tests/board_costs.rs:
