/root/repo/target/release/deps/board_costs-62e068abf80a5bf5.d: crates/acqp-core/tests/board_costs.rs Cargo.toml

/root/repo/target/release/deps/libboard_costs-62e068abf80a5bf5.rmeta: crates/acqp-core/tests/board_costs.rs Cargo.toml

crates/acqp-core/tests/board_costs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
