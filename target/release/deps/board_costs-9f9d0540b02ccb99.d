/root/repo/target/release/deps/board_costs-9f9d0540b02ccb99.d: crates/acqp-core/tests/board_costs.rs

/root/repo/target/release/deps/board_costs-9f9d0540b02ccb99: crates/acqp-core/tests/board_costs.rs

crates/acqp-core/tests/board_costs.rs:
