/root/repo/target/release/deps/criterion-79c79bbbac2bccf7.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-79c79bbbac2bccf7.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
