/root/repo/target/release/deps/criterion-a29ae53e985d2670.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-a29ae53e985d2670.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
