/root/repo/target/release/deps/estimator_ops-8e354eb54903dd1f.d: crates/acqp-bench/benches/estimator_ops.rs

/root/repo/target/release/deps/estimator_ops-8e354eb54903dd1f: crates/acqp-bench/benches/estimator_ops.rs

crates/acqp-bench/benches/estimator_ops.rs:
