/root/repo/target/release/deps/estimator_ops-c8252b8d500fd2cc.d: crates/acqp-bench/benches/estimator_ops.rs Cargo.toml

/root/repo/target/release/deps/libestimator_ops-c8252b8d500fd2cc.rmeta: crates/acqp-bench/benches/estimator_ops.rs Cargo.toml

crates/acqp-bench/benches/estimator_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
