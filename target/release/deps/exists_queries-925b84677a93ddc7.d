/root/repo/target/release/deps/exists_queries-925b84677a93ddc7.d: crates/acqp-bench/benches/exists_queries.rs

/root/repo/target/release/deps/exists_queries-925b84677a93ddc7: crates/acqp-bench/benches/exists_queries.rs

crates/acqp-bench/benches/exists_queries.rs:
