/root/repo/target/release/deps/exists_queries-ad34ac2fa4992d40.d: crates/acqp-bench/benches/exists_queries.rs Cargo.toml

/root/repo/target/release/deps/libexists_queries-ad34ac2fa4992d40.rmeta: crates/acqp-bench/benches/exists_queries.rs Cargo.toml

crates/acqp-bench/benches/exists_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
