/root/repo/target/release/deps/extensions-4d9d684ecd4a8d7f.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-4d9d684ecd4a8d7f: tests/extensions.rs

tests/extensions.rs:
