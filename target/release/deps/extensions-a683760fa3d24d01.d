/root/repo/target/release/deps/extensions-a683760fa3d24d01.d: tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-a683760fa3d24d01.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
