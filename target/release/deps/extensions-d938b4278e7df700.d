/root/repo/target/release/deps/extensions-d938b4278e7df700.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-d938b4278e7df700: tests/extensions.rs

tests/extensions.rs:
