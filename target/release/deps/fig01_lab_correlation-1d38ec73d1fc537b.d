/root/repo/target/release/deps/fig01_lab_correlation-1d38ec73d1fc537b.d: crates/acqp-bench/benches/fig01_lab_correlation.rs

/root/repo/target/release/deps/fig01_lab_correlation-1d38ec73d1fc537b: crates/acqp-bench/benches/fig01_lab_correlation.rs

crates/acqp-bench/benches/fig01_lab_correlation.rs:
