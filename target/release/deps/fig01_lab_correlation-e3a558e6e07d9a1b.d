/root/repo/target/release/deps/fig01_lab_correlation-e3a558e6e07d9a1b.d: crates/acqp-bench/benches/fig01_lab_correlation.rs Cargo.toml

/root/repo/target/release/deps/libfig01_lab_correlation-e3a558e6e07d9a1b.rmeta: crates/acqp-bench/benches/fig01_lab_correlation.rs Cargo.toml

crates/acqp-bench/benches/fig01_lab_correlation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
