/root/repo/target/release/deps/fig02_motivating_example-87add1c5c85b2fde.d: crates/acqp-bench/benches/fig02_motivating_example.rs

/root/repo/target/release/deps/fig02_motivating_example-87add1c5c85b2fde: crates/acqp-bench/benches/fig02_motivating_example.rs

crates/acqp-bench/benches/fig02_motivating_example.rs:
