/root/repo/target/release/deps/fig02_motivating_example-c97aa85d5e84df05.d: crates/acqp-bench/benches/fig02_motivating_example.rs Cargo.toml

/root/repo/target/release/deps/libfig02_motivating_example-c97aa85d5e84df05.rmeta: crates/acqp-bench/benches/fig02_motivating_example.rs Cargo.toml

crates/acqp-bench/benches/fig02_motivating_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
