/root/repo/target/release/deps/fig03_plan_enumeration-63d114d0f5497b4a.d: crates/acqp-bench/benches/fig03_plan_enumeration.rs

/root/repo/target/release/deps/fig03_plan_enumeration-63d114d0f5497b4a: crates/acqp-bench/benches/fig03_plan_enumeration.rs

crates/acqp-bench/benches/fig03_plan_enumeration.rs:
