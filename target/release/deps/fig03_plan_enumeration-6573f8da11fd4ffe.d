/root/repo/target/release/deps/fig03_plan_enumeration-6573f8da11fd4ffe.d: crates/acqp-bench/benches/fig03_plan_enumeration.rs Cargo.toml

/root/repo/target/release/deps/libfig03_plan_enumeration-6573f8da11fd4ffe.rmeta: crates/acqp-bench/benches/fig03_plan_enumeration.rs Cargo.toml

crates/acqp-bench/benches/fig03_plan_enumeration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
