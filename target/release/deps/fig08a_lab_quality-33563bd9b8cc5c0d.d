/root/repo/target/release/deps/fig08a_lab_quality-33563bd9b8cc5c0d.d: crates/acqp-bench/benches/fig08a_lab_quality.rs Cargo.toml

/root/repo/target/release/deps/libfig08a_lab_quality-33563bd9b8cc5c0d.rmeta: crates/acqp-bench/benches/fig08a_lab_quality.rs Cargo.toml

crates/acqp-bench/benches/fig08a_lab_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
