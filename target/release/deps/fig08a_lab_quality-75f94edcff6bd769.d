/root/repo/target/release/deps/fig08a_lab_quality-75f94edcff6bd769.d: crates/acqp-bench/benches/fig08a_lab_quality.rs

/root/repo/target/release/deps/fig08a_lab_quality-75f94edcff6bd769: crates/acqp-bench/benches/fig08a_lab_quality.rs

crates/acqp-bench/benches/fig08a_lab_quality.rs:
