/root/repo/target/release/deps/fig08b_spsf_sweep-49d563fdca9c015e.d: crates/acqp-bench/benches/fig08b_spsf_sweep.rs

/root/repo/target/release/deps/fig08b_spsf_sweep-49d563fdca9c015e: crates/acqp-bench/benches/fig08b_spsf_sweep.rs

crates/acqp-bench/benches/fig08b_spsf_sweep.rs:
