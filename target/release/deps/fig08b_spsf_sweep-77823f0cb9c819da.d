/root/repo/target/release/deps/fig08b_spsf_sweep-77823f0cb9c819da.d: crates/acqp-bench/benches/fig08b_spsf_sweep.rs Cargo.toml

/root/repo/target/release/deps/libfig08b_spsf_sweep-77823f0cb9c819da.rmeta: crates/acqp-bench/benches/fig08b_spsf_sweep.rs Cargo.toml

crates/acqp-bench/benches/fig08b_spsf_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
