/root/repo/target/release/deps/fig08c_gain_cdf-229a2e9d60f9b9db.d: crates/acqp-bench/benches/fig08c_gain_cdf.rs Cargo.toml

/root/repo/target/release/deps/libfig08c_gain_cdf-229a2e9d60f9b9db.rmeta: crates/acqp-bench/benches/fig08c_gain_cdf.rs Cargo.toml

crates/acqp-bench/benches/fig08c_gain_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
