/root/repo/target/release/deps/fig08c_gain_cdf-5599cbbee7411cb1.d: crates/acqp-bench/benches/fig08c_gain_cdf.rs

/root/repo/target/release/deps/fig08c_gain_cdf-5599cbbee7411cb1: crates/acqp-bench/benches/fig08c_gain_cdf.rs

crates/acqp-bench/benches/fig08c_gain_cdf.rs:
