/root/repo/target/release/deps/fig09_plan_study-8eaac87f7b43353c.d: crates/acqp-bench/benches/fig09_plan_study.rs Cargo.toml

/root/repo/target/release/deps/libfig09_plan_study-8eaac87f7b43353c.rmeta: crates/acqp-bench/benches/fig09_plan_study.rs Cargo.toml

crates/acqp-bench/benches/fig09_plan_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
