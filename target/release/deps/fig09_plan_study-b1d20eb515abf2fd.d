/root/repo/target/release/deps/fig09_plan_study-b1d20eb515abf2fd.d: crates/acqp-bench/benches/fig09_plan_study.rs

/root/repo/target/release/deps/fig09_plan_study-b1d20eb515abf2fd: crates/acqp-bench/benches/fig09_plan_study.rs

crates/acqp-bench/benches/fig09_plan_study.rs:
