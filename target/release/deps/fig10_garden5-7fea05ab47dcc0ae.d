/root/repo/target/release/deps/fig10_garden5-7fea05ab47dcc0ae.d: crates/acqp-bench/benches/fig10_garden5.rs Cargo.toml

/root/repo/target/release/deps/libfig10_garden5-7fea05ab47dcc0ae.rmeta: crates/acqp-bench/benches/fig10_garden5.rs Cargo.toml

crates/acqp-bench/benches/fig10_garden5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
