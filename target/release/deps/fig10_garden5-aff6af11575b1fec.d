/root/repo/target/release/deps/fig10_garden5-aff6af11575b1fec.d: crates/acqp-bench/benches/fig10_garden5.rs

/root/repo/target/release/deps/fig10_garden5-aff6af11575b1fec: crates/acqp-bench/benches/fig10_garden5.rs

crates/acqp-bench/benches/fig10_garden5.rs:
