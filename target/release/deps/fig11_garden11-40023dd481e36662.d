/root/repo/target/release/deps/fig11_garden11-40023dd481e36662.d: crates/acqp-bench/benches/fig11_garden11.rs

/root/repo/target/release/deps/fig11_garden11-40023dd481e36662: crates/acqp-bench/benches/fig11_garden11.rs

crates/acqp-bench/benches/fig11_garden11.rs:
