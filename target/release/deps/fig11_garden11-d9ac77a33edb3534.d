/root/repo/target/release/deps/fig11_garden11-d9ac77a33edb3534.d: crates/acqp-bench/benches/fig11_garden11.rs Cargo.toml

/root/repo/target/release/deps/libfig11_garden11-d9ac77a33edb3534.rmeta: crates/acqp-bench/benches/fig11_garden11.rs Cargo.toml

crates/acqp-bench/benches/fig11_garden11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
