/root/repo/target/release/deps/fig12_synthetic-055a72c37c22ff9a.d: crates/acqp-bench/benches/fig12_synthetic.rs

/root/repo/target/release/deps/fig12_synthetic-055a72c37c22ff9a: crates/acqp-bench/benches/fig12_synthetic.rs

crates/acqp-bench/benches/fig12_synthetic.rs:
