/root/repo/target/release/deps/fig12_synthetic-a2b779852cbf0a70.d: crates/acqp-bench/benches/fig12_synthetic.rs Cargo.toml

/root/repo/target/release/deps/libfig12_synthetic-a2b779852cbf0a70.rmeta: crates/acqp-bench/benches/fig12_synthetic.rs Cargo.toml

crates/acqp-bench/benches/fig12_synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
