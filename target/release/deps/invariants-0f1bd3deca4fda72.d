/root/repo/target/release/deps/invariants-0f1bd3deca4fda72.d: tests/invariants.rs tests/common/mod.rs

/root/repo/target/release/deps/invariants-0f1bd3deca4fda72: tests/invariants.rs tests/common/mod.rs

tests/invariants.rs:
tests/common/mod.rs:
