/root/repo/target/release/deps/invariants-1d7edcd69d4c08e8.d: tests/invariants.rs tests/common/mod.rs Cargo.toml

/root/repo/target/release/deps/libinvariants-1d7edcd69d4c08e8.rmeta: tests/invariants.rs tests/common/mod.rs Cargo.toml

tests/invariants.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
