/root/repo/target/release/deps/invariants-a76ef003ca8d524f.d: tests/invariants.rs

/root/repo/target/release/deps/invariants-a76ef003ca8d524f: tests/invariants.rs

tests/invariants.rs:
