/root/repo/target/release/deps/multihop-12c8455fd26b1291.d: crates/acqp-sensornet/tests/multihop.rs Cargo.toml

/root/repo/target/release/deps/libmultihop-12c8455fd26b1291.rmeta: crates/acqp-sensornet/tests/multihop.rs Cargo.toml

crates/acqp-sensornet/tests/multihop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
