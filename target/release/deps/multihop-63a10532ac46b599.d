/root/repo/target/release/deps/multihop-63a10532ac46b599.d: crates/acqp-sensornet/tests/multihop.rs

/root/repo/target/release/deps/multihop-63a10532ac46b599: crates/acqp-sensornet/tests/multihop.rs

crates/acqp-sensornet/tests/multihop.rs:
