/root/repo/target/release/deps/multihop-9bd754a05d91e3ec.d: crates/acqp-sensornet/tests/multihop.rs

/root/repo/target/release/deps/multihop-9bd754a05d91e3ec: crates/acqp-sensornet/tests/multihop.rs

crates/acqp-sensornet/tests/multihop.rs:
