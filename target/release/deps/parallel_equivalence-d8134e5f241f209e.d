/root/repo/target/release/deps/parallel_equivalence-d8134e5f241f209e.d: tests/parallel_equivalence.rs tests/common/mod.rs

/root/repo/target/release/deps/parallel_equivalence-d8134e5f241f209e: tests/parallel_equivalence.rs tests/common/mod.rs

tests/parallel_equivalence.rs:
tests/common/mod.rs:
