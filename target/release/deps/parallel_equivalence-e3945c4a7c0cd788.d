/root/repo/target/release/deps/parallel_equivalence-e3945c4a7c0cd788.d: tests/parallel_equivalence.rs tests/common/mod.rs Cargo.toml

/root/repo/target/release/deps/libparallel_equivalence-e3945c4a7c0cd788.rmeta: tests/parallel_equivalence.rs tests/common/mod.rs Cargo.toml

tests/parallel_equivalence.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
