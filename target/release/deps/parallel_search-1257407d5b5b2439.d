/root/repo/target/release/deps/parallel_search-1257407d5b5b2439.d: crates/acqp-bench/benches/parallel_search.rs Cargo.toml

/root/repo/target/release/deps/libparallel_search-1257407d5b5b2439.rmeta: crates/acqp-bench/benches/parallel_search.rs Cargo.toml

crates/acqp-bench/benches/parallel_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
