/root/repo/target/release/deps/parallel_search-945ecbf73fb22e51.d: crates/acqp-bench/benches/parallel_search.rs

/root/repo/target/release/deps/parallel_search-945ecbf73fb22e51: crates/acqp-bench/benches/parallel_search.rs

crates/acqp-bench/benches/parallel_search.rs:
