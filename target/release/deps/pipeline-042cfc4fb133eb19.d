/root/repo/target/release/deps/pipeline-042cfc4fb133eb19.d: tests/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libpipeline-042cfc4fb133eb19.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
