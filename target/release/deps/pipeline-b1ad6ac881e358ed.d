/root/repo/target/release/deps/pipeline-b1ad6ac881e358ed.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-b1ad6ac881e358ed: tests/pipeline.rs

tests/pipeline.rs:
