/root/repo/target/release/deps/pipeline-e506da662d507bca.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-e506da662d507bca: tests/pipeline.rs

tests/pipeline.rs:
