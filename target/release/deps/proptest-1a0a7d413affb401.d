/root/repo/target/release/deps/proptest-1a0a7d413affb401.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-1a0a7d413affb401.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
