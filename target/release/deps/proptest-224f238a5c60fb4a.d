/root/repo/target/release/deps/proptest-224f238a5c60fb4a.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-224f238a5c60fb4a.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
