/root/repo/target/release/deps/scalability-931dc73e48da33e2.d: crates/acqp-bench/benches/scalability.rs Cargo.toml

/root/repo/target/release/deps/libscalability-931dc73e48da33e2.rmeta: crates/acqp-bench/benches/scalability.rs Cargo.toml

crates/acqp-bench/benches/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
