/root/repo/target/release/deps/scalability-a0d7d776ecc89142.d: crates/acqp-bench/benches/scalability.rs

/root/repo/target/release/deps/scalability-a0d7d776ecc89142: crates/acqp-bench/benches/scalability.rs

crates/acqp-bench/benches/scalability.rs:
