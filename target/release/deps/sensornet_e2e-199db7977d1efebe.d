/root/repo/target/release/deps/sensornet_e2e-199db7977d1efebe.d: tests/sensornet_e2e.rs

/root/repo/target/release/deps/sensornet_e2e-199db7977d1efebe: tests/sensornet_e2e.rs

tests/sensornet_e2e.rs:
