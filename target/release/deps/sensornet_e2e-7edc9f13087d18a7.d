/root/repo/target/release/deps/sensornet_e2e-7edc9f13087d18a7.d: tests/sensornet_e2e.rs

/root/repo/target/release/deps/sensornet_e2e-7edc9f13087d18a7: tests/sensornet_e2e.rs

tests/sensornet_e2e.rs:
