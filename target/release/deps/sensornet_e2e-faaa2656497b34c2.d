/root/repo/target/release/deps/sensornet_e2e-faaa2656497b34c2.d: tests/sensornet_e2e.rs Cargo.toml

/root/repo/target/release/deps/libsensornet_e2e-faaa2656497b34c2.rmeta: tests/sensornet_e2e.rs Cargo.toml

tests/sensornet_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
