/root/repo/target/release/examples/adaptive_stream-a452c048fd977f84.d: examples/adaptive_stream.rs Cargo.toml

/root/repo/target/release/examples/libadaptive_stream-a452c048fd977f84.rmeta: examples/adaptive_stream.rs Cargo.toml

examples/adaptive_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
