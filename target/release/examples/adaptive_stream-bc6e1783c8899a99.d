/root/repo/target/release/examples/adaptive_stream-bc6e1783c8899a99.d: examples/adaptive_stream.rs

/root/repo/target/release/examples/adaptive_stream-bc6e1783c8899a99: examples/adaptive_stream.rs

examples/adaptive_stream.rs:
