/root/repo/target/release/examples/adaptive_stream-e58697b54918225b.d: examples/adaptive_stream.rs

/root/repo/target/release/examples/adaptive_stream-e58697b54918225b: examples/adaptive_stream.rs

examples/adaptive_stream.rs:
