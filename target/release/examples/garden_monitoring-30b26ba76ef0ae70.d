/root/repo/target/release/examples/garden_monitoring-30b26ba76ef0ae70.d: examples/garden_monitoring.rs Cargo.toml

/root/repo/target/release/examples/libgarden_monitoring-30b26ba76ef0ae70.rmeta: examples/garden_monitoring.rs Cargo.toml

examples/garden_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
