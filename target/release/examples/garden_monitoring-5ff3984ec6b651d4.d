/root/repo/target/release/examples/garden_monitoring-5ff3984ec6b651d4.d: examples/garden_monitoring.rs

/root/repo/target/release/examples/garden_monitoring-5ff3984ec6b651d4: examples/garden_monitoring.rs

examples/garden_monitoring.rs:
