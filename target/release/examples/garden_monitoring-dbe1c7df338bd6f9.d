/root/repo/target/release/examples/garden_monitoring-dbe1c7df338bd6f9.d: examples/garden_monitoring.rs

/root/repo/target/release/examples/garden_monitoring-dbe1c7df338bd6f9: examples/garden_monitoring.rs

examples/garden_monitoring.rs:
