/root/repo/target/release/examples/lab_night_watch-14762063b7ec57ea.d: examples/lab_night_watch.rs

/root/repo/target/release/examples/lab_night_watch-14762063b7ec57ea: examples/lab_night_watch.rs

examples/lab_night_watch.rs:
