/root/repo/target/release/examples/lab_night_watch-2eac13e205f725f7.d: examples/lab_night_watch.rs Cargo.toml

/root/repo/target/release/examples/liblab_night_watch-2eac13e205f725f7.rmeta: examples/lab_night_watch.rs Cargo.toml

examples/lab_night_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
