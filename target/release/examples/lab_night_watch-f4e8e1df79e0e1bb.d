/root/repo/target/release/examples/lab_night_watch-f4e8e1df79e0e1bb.d: examples/lab_night_watch.rs

/root/repo/target/release/examples/lab_night_watch-f4e8e1df79e0e1bb: examples/lab_night_watch.rs

examples/lab_night_watch.rs:
