/root/repo/target/release/examples/quickstart-538f5aa7e3d325a2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-538f5aa7e3d325a2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
