/root/repo/target/release/examples/quickstart-ac5b4e252442fc32.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ac5b4e252442fc32: examples/quickstart.rs

examples/quickstart.rs:
