/root/repo/target/release/examples/quickstart-b4e20d69c6056b2a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b4e20d69c6056b2a: examples/quickstart.rs

examples/quickstart.rs:
