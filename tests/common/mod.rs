//! Shared generators for the integration-test suites.

use acqp::core::prelude::*;
use proptest::prelude::*;

/// A random planning instance: schema (2–5 attributes, domains 2–8,
/// mixed costs), dataset (20–120 correlated-ish rows) and a conjunctive
/// query over a subset of attributes.
#[derive(Debug, Clone)]
pub struct Instance {
    pub schema: Schema,
    pub data: Dataset,
    pub query: Query,
}

pub fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..=5, any::<u64>()).prop_flat_map(|(n, seed)| {
        (
            proptest::collection::vec(2u16..=8, n),
            proptest::collection::vec(proptest::bool::ANY, n),
            20usize..=120,
            Just(seed),
        )
            .prop_map(move |(domains, cheap, rows, seed)| {
                let attrs: Vec<Attribute> = domains
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| {
                        Attribute::new(format!("x{i}"), k, if cheap[i] { 1.0 } else { 50.0 })
                    })
                    .collect();
                let schema = Schema::new(attrs).unwrap();
                // Correlated rows from a tiny xorshift stream: a latent
                // value drives every attribute plus noise.
                let mut s = seed | 1;
                let mut next = move || {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s
                };
                let data = Dataset::from_rows(
                    &schema,
                    (0..rows)
                        .map(|_| {
                            let latent = next();
                            domains
                                .iter()
                                .map(|&k| {
                                    let noise = next() % 3;
                                    ((latent.wrapping_add(noise) >> 5) % u64::from(k)) as u16
                                })
                                .collect()
                        })
                        .collect(),
                )
                .unwrap();
                // Query over the first 1..=min(3,n) attributes with
                // mid-domain ranges, negated on odd attrs.
                let m = domains.len().clamp(1, 3);
                let preds: Vec<Pred> = (0..m)
                    .map(|a| {
                        let k = domains[a];
                        let lo = k / 4;
                        let hi = (3 * k / 4).max(lo);
                        if a % 2 == 1 {
                            Pred::not_in_range(a, lo, hi)
                        } else {
                            Pred::in_range(a, lo, hi)
                        }
                    })
                    .collect();
                let query = Query::checked(preds, &schema).unwrap();
                Instance { schema, data, query }
            })
    })
}
