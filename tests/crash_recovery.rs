//! Workspace crash-recovery properties: the crashy engine is a
//! transparent wrapper when nothing crashes, a checkpoint + WAL round
//! trip reproduces the basestation's learned state bit for bit, and
//! snapshot corruption degrades to WAL replay (or cold start) instead
//! of panicking or poisoning the run.

mod common;

use std::path::PathBuf;
use std::sync::Arc;

use acqp::core::prelude::*;
use acqp::obs::{NoopSink, Recorder};
use acqp::persist::{BasestationCheckpoint, CheckpointStore, PlanRecord, WalRecord};
use acqp::sensornet::sim::{
    fleet_from_trace, run_simulation_adaptive, run_simulation_crashy, run_simulation_faulty,
    AdaptiveConfig,
};
use acqp::sensornet::{Basestation, CrashConfig, EnergyModel, FaultModel, PlannerChoice};
use acqp::stream::SlidingWindow;
use common::instance_strategy;
use proptest::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("acqp_ws_crash_recovery").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A fixed instance with non-trivial correlation, enough rows for a
/// multi-epoch run, and mixed acquisition costs.
fn small_instance() -> (Schema, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 6, 1.0),
        Attribute::new("b", 4, 20.0),
        Attribute::new("c", 5, 5.0),
    ])
    .unwrap();
    let rows: Vec<Vec<u16>> =
        (0..60u16).map(|i| vec![i * 7 % 6, (i / 3) % 4, (i * 3 + i / 5) % 5]).collect();
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![
        Pred::in_range(0, 1, 4),
        Pred::not_in_range(1, 2, 3),
        Pred::in_range(2, 0, 2),
    ])
    .unwrap();
    (schema, data, query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// With an empty crash schedule and no checkpoint directory, the
    /// crash-capable engine must be invisible: every count and every
    /// energy figure matches the plain faulty simulator bitwise.
    #[test]
    fn empty_crash_schedule_is_bitwise_transparent(
        inst in instance_strategy(),
        seed in any::<u64>(),
    ) {
        let (history, live) = inst.data.split_at(0.5);
        prop_assume!(!live.is_empty());
        let bs = Basestation::new(inst.schema.clone(), &history);
        let planned = bs.plan_query(&inst.query, PlannerChoice::Heuristic(3), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let faults = FaultModel::lossy(seed, 0.2);
        let rec = Recorder::new(Arc::new(NoopSink));

        let mut motes = fleet_from_trace(&live, 3);
        let base = run_simulation_faulty(
            &inst.schema, &inst.query, &planned, &mut motes, &model, live.len(), &faults, &rec,
        );

        let mut motes = fleet_from_trace(&live, 3);
        let crashy = run_simulation_crashy(
            &bs, &inst.query, &planned, &mut motes, &model, live.len(), &faults,
            None, &CrashConfig::default(), &rec,
        )
        .unwrap();

        prop_assert_eq!(crashy.crashes, 0);
        prop_assert_eq!(crashy.cold_starts, 0);
        prop_assert_eq!(crashy.checkpoints_written, 0);
        prop_assert_eq!(crashy.recovery_rediss_uj.to_bits(), 0.0f64.to_bits());
        let b = &crashy.fault;
        prop_assert_eq!(base.sim.epochs, b.sim.epochs);
        prop_assert_eq!(base.sim.tuples, b.sim.tuples);
        prop_assert_eq!(base.sim.results, b.sim.results);
        prop_assert_eq!(base.sim.all_correct, b.sim.all_correct);
        prop_assert_eq!(&base.sim.network, &b.sim.network);
        prop_assert_eq!(&base.sim.per_mote, &b.sim.per_mote);
        prop_assert_eq!(
            base.sim.sensing_uj_per_tuple.to_bits(),
            b.sim.sensing_uj_per_tuple.to_bits()
        );
        prop_assert_eq!(base.delivered_results, b.delivered_results);
        prop_assert_eq!(base.lost_results, b.lost_results);
        prop_assert_eq!(base.aborted_tuples, b.aborted_tuples);
        prop_assert_eq!(base.offline_epochs, b.offline_epochs);
        prop_assert_eq!(base.undisseminated_epochs, b.undisseminated_epochs);
        prop_assert_eq!(base.samples_delivered, b.samples_delivered);
        prop_assert_eq!(base.bs_tx_uj.to_bits(), b.bs_tx_uj.to_bits());
        prop_assert_eq!(base.replans.len(), b.replans.len());
    }

    /// The same transparency holds on the adaptive path: a crashy run
    /// that never crashes replays the adaptive simulator exactly,
    /// re-plan decisions included.
    #[test]
    fn adaptive_crashy_without_crashes_matches_adaptive(
        inst in instance_strategy(),
        seed in any::<u64>(),
    ) {
        let (history, live) = inst.data.split_at(0.5);
        prop_assume!(!live.is_empty());
        let bs = Basestation::new(inst.schema.clone(), &history);
        let planned = bs.plan_query(&inst.query, PlannerChoice::Heuristic(3), 0.0).unwrap();
        let model = EnergyModel::mica_like();
        let faults = FaultModel::lossy(seed, 0.1);
        let cfg = AdaptiveConfig::default();
        let rec = Recorder::new(Arc::new(NoopSink));

        let mut motes = fleet_from_trace(&live, 3);
        let base = run_simulation_adaptive(
            &bs, &inst.query, &planned, &mut motes, &model, live.len(), &faults, &cfg, &rec,
        )
        .unwrap();

        let mut motes = fleet_from_trace(&live, 3);
        let crashy = run_simulation_crashy(
            &bs, &inst.query, &planned, &mut motes, &model, live.len(), &faults,
            Some(&cfg), &CrashConfig::default(), &rec,
        )
        .unwrap();

        prop_assert_eq!(crashy.crashes, 0);
        let b = &crashy.fault;
        prop_assert_eq!(base.sim.tuples, b.sim.tuples);
        prop_assert_eq!(base.sim.results, b.sim.results);
        prop_assert_eq!(base.sim.all_correct, b.sim.all_correct);
        prop_assert_eq!(&base.sim.per_mote, &b.sim.per_mote);
        prop_assert_eq!(base.samples_delivered, b.samples_delivered);
        prop_assert_eq!(base.bs_tx_uj.to_bits(), b.bs_tx_uj.to_bits());
        prop_assert_eq!(base.replans.len(), b.replans.len());
        for (x, y) in base.replans.iter().zip(&b.replans) {
            prop_assert_eq!(x.epoch, y.epoch);
            prop_assert_eq!(x.adopted, y.adopted);
            prop_assert_eq!(x.divergence.to_bits(), y.divergence.to_bits());
            prop_assert_eq!(x.new_cost.to_bits(), y.new_cost.to_bits());
        }
    }
}

/// The acceptance property of the persistence layer: a snapshot plus a
/// WAL tail, read back by a restarted process, reproduces the plan
/// version, the drift monitor's truth counts, the sliding window's
/// ring, and the counting estimator's mask cache *bit for bit* — and
/// recovery is idempotent.
#[test]
fn recovery_round_trip_reproduces_learned_state_bit_for_bit() {
    let dir = tmp("roundtrip");
    let (schema, data, query) = small_instance();

    // Learn state the expensive way: one full estimation pass.
    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
    let sels = estimated_selectivities(&query, &est);
    let masks = est.cached_masks().expect("estimation populates the mask cache");
    let cfg = DriftConfig::default();
    let mut monitor = DriftMonitor::new(sels, cfg).unwrap();
    monitor.observe_counts(0, 40, 11);
    monitor.observe_counts(1, 40, 29);
    monitor.observe_counts(2, 40, 17);
    let mut window = SlidingWindow::new(&schema, 8);
    for r in 0..12 {
        window.push(data.row(r).to_vec());
    }
    let plan =
        PlanRecord { version: 3, wire: vec![1, 2, 3, 4, 5], expected_cost: 12.5, objective: 12.5 };

    let mut store = CheckpointStore::open(&dir).unwrap();
    store.append(&WalRecord::EpochEnd { epoch: 6 }).unwrap();
    let ckpt = BasestationCheckpoint {
        epoch: 7,
        last_seq: store.next_seq() - 1,
        plan: plan.clone(),
        drift: Some((cfg, monitor.state())),
        window: Some(window.state()),
        mask_cache: Some(masks.clone()),
        ledgers: vec![[1.0, 2.0, 3.0, 4.0], [0.5, 0.25, 0.0, 9.75]],
    };
    store.write_snapshot(&ckpt).unwrap();
    // State that accrued after the snapshot, surviving only in the WAL.
    let tail = vec![
        WalRecord::Observe { pred: 1, evaluated: 6, passed: 2 },
        WalRecord::WindowPush { row: data.row(12).to_vec() },
        WalRecord::EpochEnd { epoch: 8 },
    ];
    for r in &tail {
        store.append(r).unwrap();
    }
    drop(store);

    // A restarted process sees the snapshot plus exactly the tail.
    let store = CheckpointStore::open(&dir).unwrap();
    let out = store.recover().unwrap();
    assert!(!out.cold_start);
    assert_eq!(out.corrupt_snapshots, 0);
    assert_eq!(out.checkpoint.as_ref(), Some(&ckpt));
    assert_eq!(out.replayed, tail);

    // Replaying the tail converges on the state a crash-free process
    // would hold.
    let ck = out.checkpoint.clone().unwrap();
    let (rcfg, rstate) = ck.drift.clone().unwrap();
    let mut rec_monitor = DriftMonitor::from_state(rstate, rcfg).unwrap();
    let mut rec_window = SlidingWindow::from_state(ck.window.clone().unwrap()).unwrap();
    for r in &out.replayed {
        match r {
            WalRecord::Observe { pred, evaluated, passed } => {
                rec_monitor.observe_counts(usize::from(*pred), *evaluated, *passed);
            }
            WalRecord::WindowPush { row } => rec_window.push(row.clone()),
            _ => {}
        }
    }
    monitor.observe_counts(1, 6, 2);
    window.push(data.row(12).to_vec());
    assert_eq!(rec_monitor.state(), monitor.state());
    assert_eq!(rec_window.state(), window.state());
    assert_eq!(ck.plan, plan);

    // A fresh estimator accepts the recovered masks and serves them
    // back unchanged — the full-dataset pass is never re-paid.
    let fresh = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
    assert!(fresh.cached_masks().is_none());
    let (q, m) = ck.mask_cache.clone().unwrap();
    assert!(fresh.seed_masks(q, m));
    assert_eq!(fresh.cached_masks(), Some(masks));

    // Idempotence: recovering again changes nothing.
    assert_eq!(store.recover().unwrap(), out);
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupting every snapshot on disk must not panic or abort the next
/// run: recovery counts the bad snapshots, falls back to replaying the
/// WAL from genesis, and the simulation still completes correctly.
#[test]
fn corrupt_snapshots_fall_back_to_wal_replay_without_panicking() {
    let dir = tmp("corrupt");
    let (schema, data, query) = small_instance();
    let (history, live) = data.split_at(0.5);
    let bs = Basestation::new(schema.clone(), &history);
    let planned = bs.plan_query(&query, PlannerChoice::Heuristic(3), 0.0).unwrap();
    let model = EnergyModel::mica_like();
    let faults = FaultModel::lossy(7, 0.0);
    let rec = Recorder::new(Arc::new(NoopSink));

    // Run 1: checkpoints every 4 epochs, one mid-run crash.
    let crash = CrashConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 4,
        crash_epochs: vec![10],
        crash_rate: 0.0,
    };
    let mut motes = fleet_from_trace(&live, 3);
    let first = run_simulation_crashy(
        &bs,
        &query,
        &planned,
        &mut motes,
        &model,
        live.len(),
        &faults,
        None,
        &crash,
        &rec,
    )
    .unwrap();
    assert_eq!(first.crashes, 1);
    assert!(first.checkpoints_written > 0);
    assert!(first.fault.sim.all_correct);

    // Flip one byte in the middle of every snapshot file.
    let mut snaps = 0usize;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if !path.file_name().unwrap().to_str().unwrap().starts_with("snap-") {
            continue;
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(BasestationCheckpoint::read_from(&path).is_err(), "flip must invalidate");
        snaps += 1;
    }
    assert!(snaps > 0);

    // Run 2 in the same directory, never snapshotting, crashing again:
    // every recovery attempt sees only corrupt snapshots and must cold
    // start from the WAL.
    let crash = CrashConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 0,
        crash_epochs: vec![6],
        crash_rate: 0.0,
    };
    let mut motes = fleet_from_trace(&live, 3);
    let second = run_simulation_crashy(
        &bs,
        &query,
        &planned,
        &mut motes,
        &model,
        live.len(),
        &faults,
        None,
        &crash,
        &rec,
    )
    .unwrap();
    assert_eq!(second.crashes, 1);
    assert_eq!(second.cold_starts, 1);
    assert!(second.corrupt_snapshots >= snaps);
    assert!(second.checkpoints_written == 0);
    assert!(second.fault.sim.all_correct);
    std::fs::remove_dir_all(&dir).ok();
}
