//! Panic isolation and the degraded-mode fallback ladder, end to end:
//! a transient worker panic cannot change the plan the parallel greedy
//! search produces, and [`FallbackPlanner`] lands on each rung —
//! `None`, `GreedyPlan`, `GreedySeq`, `Naive` — under the failure that
//! forces it, always returning a plan that answers the query correctly.

use std::sync::atomic::{AtomicUsize, Ordering};

use acqp::core::prelude::*;
use acqp::obs::{MemorySink, Recorder};

/// A counting estimator whose first `fuse` cut-sweep calls panic, then
/// behaves normally — a transient bug inside a planner worker thread.
struct FlakyEstimator<'d> {
    inner: CountingEstimator<'d>,
    fuse: AtomicUsize,
}

impl<'d> Estimator for FlakyEstimator<'d> {
    type Ctx = <CountingEstimator<'d> as Estimator>::Ctx;

    fn root(&self) -> Self::Ctx {
        self.inner.root()
    }
    fn refine(&self, ctx: &Self::Ctx, attr: AttrId, r: Range) -> Self::Ctx {
        self.inner.refine(ctx, attr, r)
    }
    fn ranges<'c>(&self, ctx: &'c Self::Ctx) -> &'c Ranges {
        self.inner.ranges(ctx)
    }
    fn mass(&self, ctx: &Self::Ctx) -> f64 {
        self.inner.mass(ctx)
    }
    fn support(&self, ctx: &Self::Ctx) -> usize {
        self.inner.support(ctx)
    }
    fn hist(&self, ctx: &Self::Ctx, attr: AttrId) -> Vec<f64> {
        self.inner.hist(ctx, attr)
    }
    fn truth_table(&self, ctx: &Self::Ctx, query: &Query) -> TruthTable {
        self.inner.truth_table(ctx, query)
    }
    fn truth_by_value(&self, ctx: &Self::Ctx, attr: AttrId, query: &Query) -> Vec<TruthTable> {
        if self
            .fuse
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            panic!("injected transient estimator fault");
        }
        self.inner.truth_by_value(ctx, attr, query)
    }
    fn prob_below(&self, ctx: &Self::Ctx, attr: AttrId, cut: u16) -> f64 {
        self.inner.prob_below(ctx, attr, cut)
    }
}

/// An estimator whose every statistics call panics — total failure of
/// the probability model, the condition that drives the ladder to its
/// estimator-free bottom rung.
struct PoisonedEstimator<'d> {
    inner: CountingEstimator<'d>,
}

impl<'d> Estimator for PoisonedEstimator<'d> {
    type Ctx = <CountingEstimator<'d> as Estimator>::Ctx;

    fn root(&self) -> Self::Ctx {
        self.inner.root()
    }
    fn refine(&self, ctx: &Self::Ctx, attr: AttrId, r: Range) -> Self::Ctx {
        self.inner.refine(ctx, attr, r)
    }
    fn ranges<'c>(&self, ctx: &'c Self::Ctx) -> &'c Ranges {
        self.inner.ranges(ctx)
    }
    fn mass(&self, _ctx: &Self::Ctx) -> f64 {
        panic!("poisoned estimator: mass")
    }
    fn support(&self, _ctx: &Self::Ctx) -> usize {
        panic!("poisoned estimator: support")
    }
    fn hist(&self, _ctx: &Self::Ctx, _attr: AttrId) -> Vec<f64> {
        panic!("poisoned estimator: hist")
    }
    fn truth_table(&self, _ctx: &Self::Ctx, _query: &Query) -> TruthTable {
        panic!("poisoned estimator: truth_table")
    }
}

/// Three attributes with distinct costs and a correlated grid of rows:
/// rich enough that the greedy search splits and the ladder's rungs
/// produce different (but all correct) plans.
fn setup() -> (Schema, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 4, 10.0),
        Attribute::new("b", 4, 5.0),
        Attribute::new("t", 4, 0.5),
    ])
    .unwrap();
    let rows: Vec<Vec<u16>> = (0..64).map(|i| vec![i % 4, (i / 4) % 4, (i / 16) % 4]).collect();
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![
        Pred::in_range(0, 0, 1),
        Pred::in_range(1, 2, 3),
        Pred::not_in_range(2, 1, 2),
    ])
    .unwrap();
    (schema, data, query)
}

/// A transiently panicking worker in the parallel cut sweep is caught,
/// counted, and re-scored: the resulting plan and its expected cost are
/// bit-identical to a healthy run.
#[test]
fn greedy_parallel_sweep_isolates_transient_worker_panics() {
    let (schema, data, query) = setup();
    let clean = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
    let baseline =
        GreedyPlanner::new(4).threads(4).plan_with_report(&schema, &query, &clean).unwrap();

    let flaky = FlakyEstimator {
        inner: CountingEstimator::with_ranges(&data, Ranges::root(&schema)),
        fuse: AtomicUsize::new(2),
    };
    let report =
        GreedyPlanner::new(4).threads(4).plan_with_report(&schema, &query, &flaky).unwrap();

    assert!(report.worker_panics >= 1, "expected caught panics, got 0");
    assert_eq!(flaky.fuse.load(Ordering::Relaxed), 0, "the fuse must have blown");
    assert_eq!(report.plan, baseline.plan);
    assert_eq!(report.expected_cost.to_bits(), baseline.expected_cost.to_bits());
    assert!(measure(&report.plan, &query, &schema, &data).all_correct);
}

/// Rung `None`: a healthy estimator keeps the ladder on the exhaustive
/// planner with no degradation.
#[test]
fn ladder_rung_none_on_healthy_statistics() {
    let (schema, data, query) = setup();
    let report = FallbackPlanner::new().plan_data(&schema, &query, &data);
    assert_eq!(report.degradation, DegradationLevel::None);
    assert_eq!(report.worker_panics, 0);
    assert!(measure(&report.plan, &query, &schema, &data).all_correct);
}

/// Rung `GreedyPlan`: a starved exhaustive stage (subproblem budget 1)
/// truncates, and the ladder lands on the greedy conditional planner.
#[test]
fn ladder_rung_greedy_plan_when_exhaustive_is_starved() {
    let (schema, data, query) = setup();
    let rec = Recorder::new(std::sync::Arc::new(MemorySink::new()));
    let report = FallbackPlanner::new()
        .max_subproblems(1)
        .with_recorder(rec.clone())
        .plan_data(&schema, &query, &data);
    assert_eq!(report.degradation, DegradationLevel::GreedyPlan);
    assert!(measure(&report.plan, &query, &schema, &data).all_correct);
    let snap = rec.drain();
    assert_eq!(snap.counter("fallback.descend.exhaustive.truncated"), 1);
    assert_eq!(snap.counter("fallback.stage.greedy_plan"), 1);
}

/// Rung `GreedySeq`: the exhaustive stage truncates under a
/// subproblem budget of one, the greedy stage dies on a poisoned cut
/// sweep (an infinite fuse makes every sweep panic; only the greedy
/// search uses [`Estimator::truth_by_value`]), and the sweep-free
/// sequential orderer still plans.
#[test]
fn ladder_rung_greedy_seq_when_both_conditional_stages_fail() {
    let (schema, data, query) = setup();
    let est = FlakyEstimator {
        inner: CountingEstimator::with_ranges(&data, Ranges::root(&schema)),
        fuse: AtomicUsize::new(usize::MAX),
    };
    let rec = Recorder::new(std::sync::Arc::new(MemorySink::new()));
    let report = FallbackPlanner::new()
        .max_subproblems(1)
        .with_recorder(rec.clone())
        .plan_with_report(&schema, &query, &est);
    assert_eq!(report.degradation, DegradationLevel::GreedySeq);
    assert!(report.worker_panics >= 1);
    assert!(measure(&report.plan, &query, &schema, &data).all_correct);
    let snap = rec.drain();
    assert_eq!(snap.counter("fallback.stage.greedy_seq"), 1);
    assert_eq!(snap.counter("fallback.descend.exhaustive.truncated"), 1);
}

/// Rung `Naive`: when every statistics call panics, all three
/// estimator-backed rungs are caught and abandoned, and the ladder
/// bottoms out on the estimator-free cost-ascending sequence — still a
/// correct plan.
#[test]
fn ladder_rung_naive_survives_a_poisoned_estimator() {
    let (schema, data, query) = setup();
    let est =
        PoisonedEstimator { inner: CountingEstimator::with_ranges(&data, Ranges::root(&schema)) };
    let rec = Recorder::new(std::sync::Arc::new(MemorySink::new()));
    let report =
        FallbackPlanner::new().with_recorder(rec.clone()).plan_with_report(&schema, &query, &est);

    assert_eq!(report.degradation, DegradationLevel::Naive);
    assert!(report.worker_panics >= 3, "one caught panic per estimator-backed rung");
    // t (0.5) before b (5) before a (10): predicates in cost order.
    assert_eq!(report.plan, Plan::Seq(SeqOrder::new(vec![2, 1, 0])));
    assert!(measure(&report.plan, &query, &schema, &data).all_correct);

    let snap = rec.drain();
    assert!(snap.counter("fallback.panic.caught") >= 3);
    assert_eq!(snap.counter("fallback.descend.exhaustive.panic"), 1);
    assert_eq!(snap.counter("fallback.descend.greedy_plan.panic"), 1);
    assert_eq!(snap.counter("fallback.descend.greedy_seq.panic"), 1);
    assert_eq!(snap.counter("fallback.stage.naive"), 1);
}
