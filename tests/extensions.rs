//! Integration tests for the §7 extensions working together across
//! crates: existential queries over generated data, streaming
//! adaptation, board-aware costs through the sensornet energy model,
//! and the Chow–Liu estimator inside the adaptive pipeline.

use acqp::core::prelude::*;
use acqp::data::garden::{self, GardenAttrs, GardenConfig};
use acqp::data::lab::{self, attrs as lab_attrs, LabConfig};
use acqp::stream::{AdaptivePlanner, SlidingWindow};

/// Existential query over the garden twin: "is any mote freezing?" —
/// plans stay exact and the conditional planner at least matches the
/// fixed branch order on training data.
#[test]
fn existential_over_garden() {
    let g = garden::generate(&GardenConfig { epochs: 1_200, ..GardenConfig::garden5() });
    let (train, test) = g.data.split_at(0.5);
    let layout = GardenAttrs::new(5);
    let cold = g.discretizers[layout.temp(0)].as_ref().unwrap().quantize(6.0);
    let q = ExistsQuery::checked(
        (0..5)
            .map(|m| Query::new(vec![Pred::in_range(layout.temp(m), 0, cold)]).unwrap())
            .collect(),
        &g.schema,
    )
    .unwrap();

    let seq = ExistsPlanner::new(0).plan(&g.schema, &q, &train).unwrap();
    let cond = ExistsPlanner::new(6).plan(&g.schema, &q, &train).unwrap();
    for plan in [&seq, &cond] {
        assert!(measure_exists(plan, &q, &g.schema, &test).all_correct);
    }
    let rs = measure_exists(&seq, &q, &g.schema, &train).mean_cost;
    let rc = measure_exists(&cond, &q, &g.schema, &train).mean_cost;
    assert!(rc <= rs + 1e-6, "conditional {rc} must not lose to sequential {rs} on train");
}

/// The adaptive planner over the lab twin with a day/night regime
/// imbalance in the feed order: verdicts stay exact for every tuple.
#[test]
fn adaptive_planner_over_lab_rows() {
    let g = lab::generate(&LabConfig { motes: 6, epochs: 400, ..LabConfig::default() });
    let light_hi = g.schema.domain(lab_attrs::LIGHT) - 1;
    let q = Query::checked(
        vec![
            Pred::in_range(lab_attrs::LIGHT, 18, light_hi),
            Pred::in_range(lab_attrs::TEMP, 0, 28),
        ],
        &g.schema,
    )
    .unwrap();
    let mut ap = AdaptivePlanner::new(g.schema.clone(), q.clone(), GreedyPlanner::new(4), 400, 200)
        .with_drift_tolerance(0.1);
    for row in 0..g.data.len() {
        let tuple = g.data.row(row);
        let expect = q.eval(&tuple);
        if let (Some(out), _) = ap.ingest(tuple).unwrap() {
            assert_eq!(out.verdict, expect, "row {row}");
        }
    }
    assert!(ap.plan().is_some());
}

/// Window snapshots feed the Chow–Liu estimator: the whole streaming +
/// graphical-model stack composes.
#[test]
fn window_snapshot_feeds_gm_estimator() {
    let g = lab::generate(&LabConfig { motes: 6, epochs: 300, ..LabConfig::default() });
    let mut w = SlidingWindow::new(&g.schema, 600);
    for row in 0..g.data.len().min(900) {
        w.push(g.data.row(row));
    }
    let snap = w.snapshot(&g.schema).unwrap();
    assert_eq!(snap.len(), 600);
    let tree = acqp::gm::ChowLiuTree::fit(&g.schema, &snap, 0.5);
    let est = acqp::gm::GmEstimator::new(&tree, Ranges::root(&g.schema), 1_000, 5);
    let q = Query::checked(
        vec![Pred::in_range(lab_attrs::TEMP, 0, 30), Pred::in_range(lab_attrs::HUMIDITY, 0, 40)],
        &g.schema,
    )
    .unwrap();
    let plan = GreedyPlanner::new(4)
        .with_grid(SplitGrid::for_query(&g.schema, &q, 6))
        .plan(&g.schema, &q, &est)
        .unwrap();
    assert!(measure(&plan, &q, &g.schema, &g.data).all_correct);
}

/// Board-aware planning composes with the sensornet energy model: the
/// planner's board clustering shows up as fewer board power-ups in the
/// mote-level ledger.
#[test]
fn board_costs_compose_with_sensornet_energy() {
    use acqp::sensornet::{
        run_simulation, sim::fleet_from_trace, Basestation, EnergyModel, PlannerChoice,
    };
    let g = garden::generate(&GardenConfig { epochs: 800, ..GardenConfig::garden5() });
    let (history, live) = g.data.split_at(0.5);
    let layout = GardenAttrs::new(5);
    let q = Query::checked(
        vec![Pred::in_range(layout.temp(0), 10, 40), Pred::in_range(layout.humidity(0), 10, 50)],
        &g.schema,
    )
    .unwrap();
    let bs = Basestation::new(g.schema.clone(), &history);
    let planned = bs.plan_query(&q, PlannerChoice::CorrSeq, 0.0).unwrap();
    // Same physical board for this mote's two sensors.
    let model =
        EnergyModel::mica_like().with_board(vec![layout.temp(0), layout.humidity(0)], 200.0);
    let mut motes = fleet_from_trace(&live, 2);
    let rep = run_simulation(&g.schema, &q, &planned, &mut motes, &model, live.len());
    assert!(rep.all_correct);
    // The board powers up at most once per tuple even when both sensors
    // fire.
    assert!(rep.network.board_uj <= 200.0 * rep.tuples as f64 + 1e-9);
    assert!(rep.network.board_uj > 0.0);
}
