//! Property tests for the fault-injection layer: loss-0 transparency,
//! the retry cap, fixed-seed determinism, and the re-plan adoption gate.

mod common;

use std::sync::Arc;

use acqp::obs::{NoopSink, Recorder};
use acqp::sensornet::{
    attempt_packet, run_simulation, run_simulation_faulty, sim::fleet_from_trace, Basestation,
    EnergyModel, FaultModel, FaultStats, FaultStream, PlannerChoice, ReplanBudget,
};
use common::{instance_strategy, Instance};
use proptest::prelude::*;

/// Plans `inst`'s query over its data and runs the live half through a
/// fleet under `faults`, returning the fault report.
fn simulate(inst: &Instance, faults: &FaultModel) -> acqp::sensornet::FaultReport {
    let (history, live) = inst.data.split_at(0.5);
    let bs = Basestation::new(inst.schema.clone(), &history);
    let planned = bs.plan_query(&inst.query, PlannerChoice::Heuristic(3), 0.0).unwrap();
    let model = EnergyModel::mica_like();
    let rec = Recorder::new(Arc::new(NoopSink));
    let mut motes = fleet_from_trace(&live, 3);
    run_simulation_faulty(
        &inst.schema,
        &inst.query,
        &planned,
        &mut motes,
        &model,
        live.len(),
        faults,
        &rec,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A fault model with zero loss everywhere must be invisible: the
    /// report — verdicts, energy ledgers, everything — is bitwise the
    /// lossless simulator's.
    #[test]
    fn zero_loss_fault_model_is_bitwise_transparent(
        inst in instance_strategy(),
        seed in any::<u64>(),
    ) {
        let (history, live) = inst.data.split_at(0.5);
        let bs = Basestation::new(inst.schema.clone(), &history);
        let planned = bs.plan_query(&inst.query, PlannerChoice::Heuristic(3), 0.0).unwrap();
        let model = EnergyModel::mica_like();

        let mut motes = fleet_from_trace(&live, 3);
        let lossless = run_simulation(
            &inst.schema, &inst.query, &planned, &mut motes, &model, live.len(),
        );
        let faulty = simulate(&inst, &FaultModel::lossy(seed, 0.0));

        prop_assert_eq!(lossless.epochs, faulty.sim.epochs);
        prop_assert_eq!(lossless.tuples, faulty.sim.tuples);
        prop_assert_eq!(lossless.results, faulty.sim.results);
        prop_assert_eq!(lossless.all_correct, faulty.sim.all_correct);
        prop_assert_eq!(lossless.network, faulty.sim.network);
        prop_assert_eq!(&lossless.per_mote, &faulty.sim.per_mote);
        prop_assert_eq!(
            lossless.sensing_uj_per_tuple.to_bits(),
            faulty.sim.sensing_uj_per_tuple.to_bits()
        );
        prop_assert_eq!(faulty.delivered_results, faulty.sim.results);
        prop_assert_eq!(faulty.lost_results, 0);
        prop_assert_eq!(faulty.aborted_tuples, 0);
    }

    /// Retries never exceed the attempt cap, even on a link that loses
    /// every packet; delivery on a dead link is impossible and exactly
    /// `max_attempts` transmissions are charged.
    #[test]
    fn retries_respect_the_attempt_cap(
        seed in any::<u64>(),
        cap in 1u32..=8,
        mote in 0u16..8,
        epoch in 0usize..64,
    ) {
        let faults = FaultModel::lossy(seed, 1.0).with_max_attempts(cap);
        let rec = Recorder::new(Arc::new(NoopSink));
        let stats = FaultStats::new(&rec);
        for stream in [FaultStream::Dissemination, FaultStream::Result, FaultStream::Sample] {
            let d = attempt_packet(&faults, stream, mote, epoch, &stats);
            prop_assert_eq!(d.attempts, cap);
            prop_assert!(!d.delivered);
        }
        // And under partial loss the cap still binds.
        let faults = FaultModel::lossy(seed, 0.5).with_max_attempts(cap);
        let d = attempt_packet(&faults, FaultStream::Result, mote, epoch, &stats);
        prop_assert!(d.attempts >= 1 && d.attempts <= cap);
        drop(rec.drain());
    }

    /// The same seed replays the same lossy run: every count and every
    /// energy figure is reproduced exactly.
    #[test]
    fn fixed_seed_lossy_runs_are_deterministic(
        inst in instance_strategy(),
        seed in any::<u64>(),
    ) {
        let faults = FaultModel::lossy(seed, 0.35).with_sensing_failures(0.1);
        let a = simulate(&inst, &faults);
        let b = simulate(&inst, &faults);
        prop_assert_eq!(a.delivered_results, b.delivered_results);
        prop_assert_eq!(a.lost_results, b.lost_results);
        prop_assert_eq!(a.aborted_tuples, b.aborted_tuples);
        prop_assert_eq!(a.sim.results, b.sim.results);
        prop_assert_eq!(a.sim.network, b.sim.network);
        prop_assert_eq!(&a.sim.per_mote, &b.sim.per_mote);
    }

    /// A drift-triggered re-plan is adopted only when it is strictly
    /// cheaper than continuing the stale plan under the drifted window's
    /// distribution — adoption can never raise expected cost.
    #[test]
    fn adopted_replan_never_costs_more_than_the_stale_plan(
        inst in instance_strategy(),
    ) {
        let (history, window) = inst.data.split_at(0.5);
        prop_assume!(!window.is_empty());
        let bs = Basestation::new(inst.schema.clone(), &history);
        let stale = bs.plan_query(&inst.query, PlannerChoice::Naive, 0.0).unwrap();
        let out = bs
            .replan(&inst.query, &window, &ReplanBudget::default(), 0.0, &stale)
            .unwrap();
        prop_assert!(out.new_cost.is_finite() && out.stale_cost.is_finite());
        if out.adopted {
            prop_assert!(
                out.new_cost < out.stale_cost,
                "adopted at {} vs stale {}", out.new_cost, out.stale_cost
            );
        }
        prop_assert_eq!(out.est_selectivities.len(), inst.query.len());
    }
}
