//! Property-based invariants over random schemas, datasets and queries.

use acqp::core::prelude::*;
use proptest::prelude::*;

mod common;
use common::{instance_strategy, Instance};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every plan from every planner computes exactly φ(x) on every
    /// tuple, and the claimed model cost equals the training mean.
    #[test]
    fn planners_always_exact(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plans = vec![
            SeqPlanner::naive().plan_with_cost(&schema, &query, &est).unwrap(),
            SeqPlanner::greedy().plan_with_cost(&schema, &query, &est).unwrap(),
            SeqPlanner::optimal().plan_with_cost(&schema, &query, &est).unwrap(),
            GreedyPlanner::new(4).plan_with_cost(&schema, &query, &est).unwrap(),
        ];
        for (plan, claimed) in plans {
            let rep = measure(&plan, &query, &schema, &data);
            prop_assert!(rep.all_correct, "incorrect plan {plan:?}");
            prop_assert!((claimed - rep.mean_cost).abs() < 1e-6,
                "claimed {claimed} vs measured {}", rep.mean_cost);
        }
    }

    /// The exhaustive optimum never exceeds any other planner's cost on
    /// the training distribution (grids aligned).
    #[test]
    fn exhaustive_dominates(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (exh, ce, used) = ExhaustivePlanner::new()
            .max_subproblems(500_000)
            .plan_with_stats(&schema, &query, &est)
            .unwrap();
        prop_assume!(used <= 500_000); // only check proven optima
        let rep = measure(&exh, &query, &schema, &data);
        prop_assert!(rep.all_correct);
        prop_assert!((ce - rep.mean_cost).abs() < 1e-6);
        for (plan, _) in [
            SeqPlanner::optimal().plan_with_cost(&schema, &query, &est).unwrap(),
            GreedyPlanner::new(6).plan_with_cost(&schema, &query, &est).unwrap(),
        ] {
            let other = measure(&plan, &query, &schema, &data).mean_cost;
            prop_assert!(ce <= other + 1e-6, "exhaustive {ce} > other {other}");
        }
    }

    /// Wire encoding round-trips and the byte-code interpreter agrees
    /// with the tree executor on every tuple.
    #[test]
    fn wire_format_and_interpreter_agree(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = GreedyPlanner::new(5).plan(&schema, &query, &est).unwrap();
        let wire = plan.encode();
        prop_assert_eq!(&Plan::decode(&wire).unwrap(), &plan);
        for row in 0..data.len() {
            let a = execute(&plan, &query, &schema, &mut RowSource::new(&data, row));
            let b = acqp::sensornet::execute_wire(
                &wire, &query, &schema, &mut RowSource::new(&data, row)).unwrap();
            prop_assert_eq!(a.verdict, b.verdict);
            prop_assert!((a.cost - b.cost).abs() < 1e-12);
            prop_assert_eq!(a.acquired, b.acquired);
        }
    }

    /// Estimator laws: histograms are distributions, refinement is
    /// monotone in mass, and truth tables are consistent with direct
    /// counting.
    #[test]
    fn estimator_laws(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();
        prop_assert!((est.mass(&root) - 1.0).abs() < 1e-9);
        for a in 0..schema.len() {
            let h = est.hist(&root, a);
            prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(h.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
            let k = schema.domain(a);
            if k >= 2 {
                let child = est.refine(&root, a, Range::new(0, k / 2));
                prop_assert!(est.mass(&child) <= est.mass(&root) + 1e-12);
                prop_assert!(est.support(&child) <= est.support(&root));
            }
        }
        let t = est.truth_table(&root, &query);
        let direct = (0..data.len())
            .filter(|&r| query.eval_with(|a| data.value(r, a)))
            .count() as f64;
        let full_mask = (1u64 << query.len()) - 1;
        prop_assert!((t.weight_superset(full_mask) - direct).abs() < 1e-9);
    }

    /// Simplification preserves every verdict and never increases
    /// measured cost or wire size.
    #[test]
    fn simplify_is_sound_and_non_increasing(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = GreedyPlanner::new(5).plan(&schema, &query, &est).unwrap();
        let simp = plan.simplify();
        prop_assert!(simp.wire_size() <= plan.wire_size());
        let a = measure(&plan, &query, &schema, &data);
        let b = measure(&simp, &query, &schema, &data);
        prop_assert!(a.all_correct && b.all_correct);
        prop_assert!(b.mean_cost <= a.mean_cost + 1e-9);
        prop_assert!((a.pass_rate - b.pass_rate).abs() < 1e-12);
    }

    /// Explain totals equal the Eq.(3) expected cost for every planner
    /// output.
    #[test]
    fn explain_totals_match(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = GreedyPlanner::new(4).plan(&schema, &query, &est).unwrap();
        let ex = explain(&plan, &query, &schema, &CostModel::PerAttribute, &est);
        let want = expected_cost(&plan, &query, &schema, &est);
        prop_assert!((ex.total_cost() - want).abs() < 1e-9);
    }

    /// Sequential-plan expected cost from the truth table equals a
    /// brute-force per-row simulation.
    #[test]
    fn seq_cost_matches_simulation(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();
        let table = est.truth_table(&root, &query);
        let order: Vec<usize> = (0..query.len()).collect();
        let eff: Vec<f64> = query
            .preds()
            .iter()
            .map(|p| schema.cost(p.attr()))
            .collect();
        let model = table.seq_cost(&order, &eff);
        let plan = Plan::Seq(SeqOrder::new(order));
        let measured = measure(&plan, &query, &schema, &data).mean_cost;
        prop_assert!((model - measured).abs() < 1e-9, "{model} vs {measured}");
    }
}
