//! Serial/parallel equivalence of the plan search.
//!
//! Parallelism in both planners is designed to be *observationally
//! invisible*: the exhaustive planner uses worker threads only to warm a
//! shared memo table whose entries are exact subproblem optima, and the
//! greedy planner fans out self-contained per-attribute sweeps reduced
//! in a fixed order. Either way the values every comparison sees are
//! identical to the serial run's, so the chosen plan and its expected
//! cost must match *bitwise* for any thread count — not merely within a
//! tolerance.
//!
//! Truncation (subproblem cap or deadline) is the one escape hatch:
//! a truncated search may return a worse plan, but never an invalid or
//! super-optimal one.

use acqp::core::prelude::*;
use acqp::obs::{NoopSink, Recorder};
use proptest::prelude::*;
use std::sync::Arc;

mod common;
use common::{instance_strategy, Instance};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Exhaustive search: threads=1 and threads=N return bitwise-equal
    /// expected costs and identical plans when neither run truncates.
    #[test]
    fn exhaustive_parallel_is_bitwise_equal(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let serial = ExhaustivePlanner::new()
            .max_subproblems(500_000)
            .plan_with_report(&schema, &query, &est)
            .unwrap();
        prop_assume!(!serial.truncated);
        for threads in [2usize, 4] {
            let par = ExhaustivePlanner::new()
                .max_subproblems(500_000)
                .threads(threads)
                .plan_with_report(&schema, &query, &est)
                .unwrap();
            prop_assert!(!par.truncated,
                "parallel run truncated where serial did not (threads={threads})");
            prop_assert_eq!(
                serial.expected_cost.to_bits(), par.expected_cost.to_bits(),
                "threads={}: {} vs {}", threads, serial.expected_cost, par.expected_cost);
            prop_assert_eq!(&serial.plan, &par.plan, "threads={}", threads);
        }
    }

    /// Greedy search: per-attribute fan-out never changes the result,
    /// truncated or not (determinism does not rely on prop_assume).
    #[test]
    fn greedy_parallel_is_bitwise_equal(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let serial = GreedyPlanner::new(5)
            .plan_with_report(&schema, &query, &est)
            .unwrap();
        for threads in [2usize, 4] {
            let par = GreedyPlanner::new(5)
                .threads(threads)
                .plan_with_report(&schema, &query, &est)
                .unwrap();
            prop_assert_eq!(
                serial.expected_cost.to_bits(), par.expected_cost.to_bits(),
                "threads={}: {} vs {}", threads, serial.expected_cost, par.expected_cost);
            prop_assert_eq!(&serial.plan, &par.plan, "threads={}", threads);
        }
    }

    /// Recording is free of observer effects: with a live recorder the
    /// exhaustive planner returns the identical plan and bitwise-equal
    /// cost, and the `planner.subproblems.opened` counter agrees exactly
    /// with [`PlanReport::subproblems`] — the counter increment sits
    /// adjacent to every budget grant, so a drift here means a code path
    /// opens subproblems without accounting for them (or vice versa).
    #[test]
    fn recording_does_not_perturb_search(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plain = ExhaustivePlanner::new()
            .max_subproblems(500_000)
            .plan_with_report(&schema, &query, &est)
            .unwrap();
        let rec = Recorder::new(Arc::new(NoopSink));
        let recorded = ExhaustivePlanner::new()
            .max_subproblems(500_000)
            .threads(1)
            .with_recorder(rec.clone())
            .plan_with_report(&schema, &query, &est)
            .unwrap();
        prop_assert_eq!(
            plain.expected_cost.to_bits(), recorded.expected_cost.to_bits(),
            "recording changed the expected cost: {} vs {}",
            plain.expected_cost, recorded.expected_cost);
        prop_assert_eq!(&plain.plan, &recorded.plan, "recording changed the chosen plan");
        let snap = rec.drain();
        prop_assert_eq!(
            snap.counter("planner.subproblems.opened"), recorded.subproblems as u64,
            "metrics counter disagrees with PlanReport::subproblems");
    }

    /// A budget-truncated exhaustive search still returns a correct plan
    /// whose cost is never below the true optimum.
    #[test]
    fn truncated_never_beats_optimum(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let full = ExhaustivePlanner::new()
            .max_subproblems(500_000)
            .plan_with_report(&schema, &query, &est)
            .unwrap();
        prop_assume!(!full.truncated);
        for cap in [1usize, 8, 64] {
            let cut = ExhaustivePlanner::new()
                .max_subproblems(cap)
                .plan_with_report(&schema, &query, &est)
                .unwrap();
            // The truncated plan is still exact on every tuple...
            let rep = measure(&cut.plan, &query, &schema, &data);
            prop_assert!(rep.all_correct, "cap={cap} produced an incorrect plan");
            prop_assert!((cut.expected_cost - rep.mean_cost).abs() < 1e-6,
                "cap={}: claimed {} vs measured {}", cap, cut.expected_cost, rep.mean_cost);
            // ...and never cheaper than the proven optimum.
            prop_assert!(cut.expected_cost >= full.expected_cost - 1e-9,
                "cap={}: truncated {} beat optimum {}",
                cap, cut.expected_cost, full.expected_cost);
        }
    }
}
