//! Cross-crate integration tests: full plan→execute pipelines over every
//! dataset substrate, checking the paper's structural guarantees.

use acqp::core::prelude::*;
use acqp::data::garden::{self, GardenConfig};
use acqp::data::lab::{self, LabConfig};
use acqp::data::synthetic::{self, SyntheticConfig};
use acqp::data::workload::{garden_queries_on, lab_queries, synthetic_query};

/// Every planner on every Lab query: plans are always exact, and on the
/// *training* window the quality ordering
/// `Exhaustive ≤ Heuristic ≤ OptSeq ≤ Naive-as-executed` holds.
#[test]
fn lab_dominance_chain_on_training_data() {
    let g = lab::generate(&LabConfig { motes: 8, epochs: 500, ..LabConfig::default() });
    let (train, _) = g.split(0.8);
    let queries = lab_queries(&g.schema, &train, 6, 3, 11).unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
        let grid = SplitGrid::for_query(&g.schema, q, 2);

        let naive = SeqPlanner::naive().plan(&g.schema, q, &est).unwrap();
        let optseq = SeqPlanner::optimal().plan(&g.schema, q, &est).unwrap();
        let heur = GreedyPlanner::new(10)
            .with_base(SeqAlgorithm::Optimal)
            .with_grid(grid.clone())
            .plan(&g.schema, q, &est)
            .unwrap();
        let (exh, _, used) = ExhaustivePlanner::with_grid(grid)
            .max_subproblems(2_000_000)
            .plan_with_stats(&g.schema, q, &est)
            .unwrap();
        assert!(used <= 2_000_000, "query {qi}: exhaustive must complete");

        let c = |p: &Plan| {
            let r = measure(p, q, &g.schema, &train);
            assert!(r.all_correct, "query {qi}: plan must be exact");
            r.mean_cost
        };
        let (cn, co, ch, ce) = (c(&naive), c(&optseq), c(&heur), c(&exh));
        assert!(ce <= ch + 1e-6, "query {qi}: exhaustive {ce} > heuristic {ch}");
        assert!(ch <= co + 1e-6, "query {qi}: heuristic {ch} > optseq {co}");
        assert!(co <= cn + 1e-6, "query {qi}: optseq {co} > naive {cn}");
    }
}

/// Garden: all three §6.2 algorithms stay exact on held-out data, and
/// the conditional planner never regresses on the training window.
#[test]
fn garden_planners_exact_and_no_train_regression() {
    let g = garden::generate(&GardenConfig { epochs: 1_500, ..GardenConfig::garden5() });
    let (train, test) = g.split(0.5);
    let queries = garden_queries_on(&g.schema, Some(&train), 5, 5, 22).unwrap();
    for q in &queries {
        let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
        let corr = SeqPlanner::greedy().plan(&g.schema, q, &est).unwrap();
        let heur = GreedyPlanner::new(8)
            .with_base(SeqAlgorithm::Greedy)
            .with_grid(SplitGrid::for_query(&g.schema, q, 10))
            .plan(&g.schema, q, &est)
            .unwrap();
        for p in [&corr, &heur] {
            assert!(measure(p, q, &g.schema, &test).all_correct);
        }
        let tr_corr = measure(&corr, q, &g.schema, &train).mean_cost;
        let tr_heur = measure(&heur, q, &g.schema, &train).mean_cost;
        assert!(
            tr_heur <= tr_corr + 1e-6,
            "heuristic must not regress on training data: {tr_heur} vs {tr_corr}"
        );
    }
}

/// Synthetic: the planner exploits the cheap group-mates; Γ > 0 makes
/// the conditional plan strictly cheaper than Naive out of sample.
#[test]
fn synthetic_conditional_beats_naive_out_of_sample() {
    let cfg = SyntheticConfig::new(10, 1, 0.5).with_rows(8_000);
    let g = synthetic::generate(&cfg);
    let (train, test) = g.split(0.5);
    let q = synthetic_query(&cfg, &g.schema);
    let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
    let naive = SeqPlanner::naive().plan(&g.schema, &q, &est).unwrap();
    let heur = GreedyPlanner::new(10).plan(&g.schema, &q, &est).unwrap();
    let cn = measure(&naive, &q, &g.schema, &test);
    let ch = measure(&heur, &q, &g.schema, &test);
    assert!(cn.all_correct && ch.all_correct);
    assert!(
        ch.mean_cost < 0.95 * cn.mean_cost,
        "conditional {} should clearly beat naive {}",
        ch.mean_cost,
        cn.mean_cost
    );
    // The conditional plan must actually observe cheap attributes.
    assert!(heur.split_count() > 0);
}

/// The planner-claimed expected cost equals the measured training-window
/// mean for every planner (the counting estimator *is* the empirical
/// distribution).
#[test]
fn model_cost_equals_training_cost_everywhere() {
    let g = lab::generate(&LabConfig { motes: 6, epochs: 400, ..LabConfig::default() });
    let (train, _) = g.split(0.9);
    let queries = lab_queries(&g.schema, &train, 4, 3, 33).unwrap();
    for q in &queries {
        let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
        let checks: Vec<(&str, Plan, f64)> = vec![
            {
                let (p, c) = SeqPlanner::naive().plan_with_cost(&g.schema, q, &est).unwrap();
                ("naive", p, c)
            },
            {
                let (p, c) = SeqPlanner::optimal().plan_with_cost(&g.schema, q, &est).unwrap();
                ("optseq", p, c)
            },
            {
                let (p, c) = GreedyPlanner::new(6)
                    .with_grid(SplitGrid::for_query(&g.schema, q, 8))
                    .plan_with_cost(&g.schema, q, &est)
                    .unwrap();
                ("greedy", p, c)
            },
        ];
        for (name, plan, claimed) in checks {
            let measured = measure(&plan, q, &g.schema, &train).mean_cost;
            assert!(
                (claimed - measured).abs() < 1e-6,
                "{name}: claimed {claimed} vs measured {measured}"
            );
            // Eq. (3) recursion agrees too.
            let eq3 = expected_cost(&plan, q, &g.schema, &est);
            assert!((eq3 - measured).abs() < 1e-6, "{name}: Eq.(3) {eq3} vs measured {measured}");
        }
    }
}

/// CSV round-trip composes with planning: persist the Lab trace, reload
/// it, and the same plan comes out.
#[test]
fn csv_roundtrip_preserves_planning() {
    let g = lab::generate(&LabConfig { motes: 6, epochs: 300, ..LabConfig::default() });
    let dir = std::env::temp_dir().join("acqp_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lab.csv");
    acqp::data::csv::save_csv(&path, &g.schema, &g.data).unwrap();
    let reloaded = acqp::data::csv::load_csv(&path, &g.schema).unwrap();
    std::fs::remove_file(&path).ok();

    let queries = lab_queries(&g.schema, &g.data, 2, 3, 44).unwrap();
    for q in &queries {
        let e1 = CountingEstimator::with_ranges(&g.data, Ranges::root(&g.schema));
        let e2 = CountingEstimator::with_ranges(&reloaded, Ranges::root(&g.schema));
        let p1 = GreedyPlanner::new(5).plan(&g.schema, q, &e1).unwrap();
        let p2 = GreedyPlanner::new(5).plan(&g.schema, q, &e2).unwrap();
        assert_eq!(p1, p2);
    }
}

/// The graphical-model estimator slots into every planner.
#[test]
fn gm_estimator_drives_all_planners() {
    let g = lab::generate(&LabConfig { motes: 6, epochs: 400, ..LabConfig::default() });
    let (train, test) = g.split(0.7);
    let tree = acqp::gm::ChowLiuTree::fit(&g.schema, &train, 0.5);
    let est = acqp::gm::GmEstimator::new(&tree, Ranges::root(&g.schema), 1_500, 9);
    let queries = lab_queries(&g.schema, &train, 3, 3, 55).unwrap();
    for q in &queries {
        for plan in [
            SeqPlanner::naive().plan(&g.schema, q, &est).unwrap(),
            SeqPlanner::greedy().plan(&g.schema, q, &est).unwrap(),
            GreedyPlanner::new(5)
                .with_grid(SplitGrid::for_query(&g.schema, q, 6))
                .plan(&g.schema, q, &est)
                .unwrap(),
        ] {
            assert!(measure(&plan, q, &g.schema, &test).all_correct);
        }
    }
}
