//! End-to-end sensor-network tests: basestation → wire → motes, with
//! energy accounting (Fig. 4's architecture).

// Energy assertions compare exact model-priced floats on purpose.
#![allow(clippy::float_cmp)]

use acqp::core::prelude::*;
use acqp::data::garden::{self, GardenAttrs, GardenConfig};
use acqp::sensornet::{
    run_simulation, sim::fleet_from_trace, Basestation, EnergyModel, PlannerChoice,
};

fn setup() -> (acqp::data::Generated, Query) {
    let cfg = GardenConfig { epochs: 1_200, ..GardenConfig::garden5() };
    let g = garden::generate(&cfg);
    let layout = GardenAttrs::new(5);
    let mut preds = Vec::new();
    for m in 0..5 {
        preds.push(Pred::in_range(layout.temp(m), 12, 40));
        preds.push(Pred::in_range(layout.humidity(m), 10, 50));
    }
    let q = Query::checked(preds, &g.schema).unwrap();
    (g, q)
}

#[test]
fn full_pipeline_is_exact_and_accounts_energy() {
    let (g, query) = setup();
    let (history, live) = g.split(0.5);
    let bs = Basestation::new(g.schema.clone(), &history);
    let model = EnergyModel::mica_like();

    for choice in [PlannerChoice::Naive, PlannerChoice::CorrSeq, PlannerChoice::Heuristic(6)] {
        let planned = bs.plan_query(&query, choice, 0.0).unwrap();
        // The wire must decode back to the same plan the planner built.
        assert_eq!(Plan::decode(&planned.wire).unwrap(), planned.plan);

        let mut motes = fleet_from_trace(&live, 4);
        let rep = run_simulation(&g.schema, &query, &planned, &mut motes, &model, live.len());
        assert!(rep.all_correct, "{choice:?} must stay exact on live data");
        assert_eq!(rep.tuples, 4 * live.len());
        // Every mote paid for receiving the plan.
        for l in &rep.per_mote {
            assert!(
                (l.radio_rx_uj - planned.wire.len() as f64 * model.radio_rx_uj_per_byte).abs()
                    < 1e-9
            );
        }
        // Sensing energy is bounded by acquiring every query attribute
        // for every tuple.
        let max_per_tuple: f64 = query.preds().iter().map(|p| g.schema.cost(p.attr())).sum();
        assert!(rep.sensing_uj_per_tuple <= max_per_tuple * model.uj_per_cost_unit + 1e-9);
    }
}

#[test]
fn plan_size_objective_prefers_small_plans_for_short_queries() {
    let (g, query) = setup();
    let (history, _) = g.split(0.5);
    let bs = Basestation::new(g.schema.clone(), &history);
    let candidates = [0usize, 2, 8, 24];
    let (k_free, planned_free) = bs.plan_query_sized(&query, 0.0, &candidates).unwrap();
    let (k_tight, planned_tight) = bs.plan_query_sized(&query, 50.0, &candidates).unwrap();
    assert!(k_tight <= k_free);
    assert!(planned_tight.wire.len() <= planned_free.wire.len());
    // The objective must actually be minimized at the chosen k.
    for &k in &candidates {
        let p = bs.plan_query(&query, PlannerChoice::Heuristic(k), 50.0).unwrap();
        assert!(planned_tight.objective <= p.objective + 1e-9);
    }
}

#[test]
fn board_powerup_reduces_to_zero_without_boards() {
    let (g, query) = setup();
    let (history, live) = g.split(0.5);
    let bs = Basestation::new(g.schema.clone(), &history);
    let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();

    let no_board = EnergyModel::mica_like();
    let mut motes = fleet_from_trace(&live.take(200), 2);
    let rep = run_simulation(&g.schema, &query, &planned, &mut motes, &no_board, 200);
    assert_eq!(rep.network.board_uj, 0.0);

    let layout = GardenAttrs::new(5);
    let with_board =
        EnergyModel::mica_like().with_board((0..5).map(|m| layout.temp(m)).collect(), 100.0);
    let mut motes = fleet_from_trace(&live.take(200), 2);
    let rep2 = run_simulation(&g.schema, &query, &planned, &mut motes, &with_board, 200);
    assert!(rep2.network.board_uj > 0.0);
    // Identical sensing either way — boards only add power-up energy.
    assert!((rep.network.sensing_uj - rep2.network.sensing_uj).abs() < 1e-9);
}
