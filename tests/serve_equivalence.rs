//! Differential harness: the multi-query service against the plain
//! engine (`DESIGN.md` §14).
//!
//! Two guarantees are pinned over randomized instances:
//!
//! 1. **Transparency** — a service run with a single query spanning the
//!    whole trace is *bitwise* identical to `run_simulation_mode`:
//!    same tuples, results, per-mote and network energy ledgers to the
//!    bit, in both exec modes. The service's sharing machinery must be
//!    invisible when there is nothing to share.
//! 2. **Mode equivalence** — a merged multi-query schedule produces
//!    bitwise-identical reports whether the slots execute through the
//!    scalar interpreter or the vectorized batch path, because both
//!    accumulate each ledger field in the same first-demand order.

// Bitwise f64 equality is the entire point of this suite.
#![allow(clippy::float_cmp)]

use acqp::core::exec::ExecMode;
use acqp::core::prelude::*;
use acqp::obs::Recorder;
use acqp::sensornet::sim::{fleet_from_trace, run_simulation_mode};
use acqp::sensornet::{Basestation, EnergyLedger, EnergyModel, ScheduleEntry};
use acqp::serve::{serve_schedule, ServeConfig, ServeReport};
use proptest::prelude::*;

mod common;
use common::{instance_strategy, Instance};

/// Honors the `PROPTEST_CASES` override the sanitizer CI jobs set.
fn cases(default_n: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

fn assert_ledgers_bitwise(a: &EnergyLedger, b: &EnergyLedger, ctx: &str) {
    assert_eq!(a.sensing_uj.to_bits(), b.sensing_uj.to_bits(), "{ctx}: sensing_uj");
    assert_eq!(a.board_uj.to_bits(), b.board_uj.to_bits(), "{ctx}: board_uj");
    assert_eq!(a.radio_tx_uj.to_bits(), b.radio_tx_uj.to_bits(), "{ctx}: radio_tx_uj");
    assert_eq!(a.radio_rx_uj.to_bits(), b.radio_rx_uj.to_bits(), "{ctx}: radio_rx_uj");
}

fn serve_instance(inst: &Instance, schedule: &[ScheduleEntry], mode: ExecMode) -> ServeReport {
    serve_schedule(
        &inst.schema,
        &inst.data,
        &inst.data,
        schedule,
        2,
        &EnergyModel::mica_like(),
        inst.data.len(),
        mode,
        ServeConfig::default(),
        &Recorder::disabled(),
    )
    .expect("service run on a well-formed instance")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(24), ..ProptestConfig::default() })]

    /// A single whole-trace query through the service is bitwise
    /// identical to the plain engine, in both exec modes.
    #[test]
    fn single_query_service_is_bitwise_transparent(inst in instance_strategy()) {
        let cfg = ServeConfig::default();
        let epochs = inst.data.len();
        let schedule =
            vec![ScheduleEntry::new(inst.query.clone(), 0, epochs)];
        let bs = Basestation::new(inst.schema.clone(), &inst.data);
        let (_, planned) = bs
            .plan_query_sized(&inst.query, cfg.alpha, &cfg.candidate_splits)
            .expect("planning a checked query");
        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            let mut fleet = fleet_from_trace(&inst.data, 2);
            let sim = run_simulation_mode(
                &inst.schema,
                &inst.query,
                &planned,
                &mut fleet,
                &EnergyModel::mica_like(),
                epochs,
                mode,
                &Recorder::disabled(),
            );
            let rep = serve_instance(&inst, &schedule, mode);
            prop_assert_eq!(rep.service.tuples(), sim.tuples, "{:?}: tuples", mode);
            prop_assert_eq!(rep.service.results(), sim.results, "{:?}: results", mode);
            prop_assert!(rep.service.all_correct(), "{mode:?}: verdicts vs ground truth");
            assert_ledgers_bitwise(
                &rep.service.network,
                &sim.network,
                &format!("{mode:?}: network"),
            );
            prop_assert_eq!(rep.service.per_mote.len(), sim.per_mote.len());
            for (i, (a, b)) in
                rep.service.per_mote.iter().zip(&sim.per_mote).enumerate()
            {
                assert_ledgers_bitwise(a, b, &format!("{mode:?}: mote {i}"));
            }
        }
    }

    /// A staggered multi-query schedule executes bitwise-identically
    /// through the scalar and vectorized slot paths.
    #[test]
    fn merged_service_modes_agree_bitwise(inst in instance_strategy()) {
        let epochs = inst.data.len();
        // The instance's query plus its first predicate alone: two
        // distinct signatures with guaranteed attribute overlap, the
        // second admitted mid-run, plus a repeat admission of the first
        // to drive the cache path in both modes.
        let sub = Query::new(vec![inst.query.pred(0)]).expect("one checked predicate");
        let schedule = vec![
            ScheduleEntry::new(inst.query.clone(), 0, epochs),
            ScheduleEntry::new(sub, epochs / 3, epochs),
            ScheduleEntry::new(inst.query.clone(), epochs / 2, epochs / 2),
        ];
        let scalar = serve_instance(&inst, &schedule, ExecMode::Scalar);
        let vec = serve_instance(&inst, &schedule, ExecMode::Vectorized);
        prop_assert!(scalar.service.all_correct());
        prop_assert!(vec.service.all_correct());
        assert_ledgers_bitwise(&scalar.service.network, &vec.service.network, "network");
        for (i, (a, b)) in
            scalar.service.per_mote.iter().zip(&vec.service.per_mote).enumerate()
        {
            assert_ledgers_bitwise(a, b, &format!("mote {i}"));
        }
        prop_assert_eq!(
            scalar.service.bs_tx_uj.to_bits(),
            vec.service.bs_tx_uj.to_bits(),
            "dissemination energy"
        );
        prop_assert_eq!(
            scalar.service.performed_acquisitions,
            vec.service.performed_acquisitions
        );
        prop_assert_eq!(
            scalar.service.demanded_acquisitions,
            vec.service.demanded_acquisitions
        );
        prop_assert_eq!(scalar.service.queries.len(), vec.service.queries.len());
        for (i, (a, b)) in scalar.service.queries.iter().zip(&vec.service.queries).enumerate() {
            prop_assert_eq!(a.admitted, b.admitted, "q{}: admitted", i);
            prop_assert_eq!(a.tuples, b.tuples, "q{}: tuples", i);
            prop_assert_eq!(a.results, b.results, "q{}: results", i);
            prop_assert_eq!(a.cache_hit, b.cache_hit, "q{}: cache_hit", i);
            prop_assert_eq!(a.subproblems, b.subproblems, "q{}: subproblems", i);
            prop_assert_eq!(a.latency_epochs, b.latency_epochs, "q{}: latency", i);
            prop_assert_eq!(a.completed_at, b.completed_at, "q{}: completed_at", i);
        }
        // Sharing must actually have happened: overlapping windows on
        // a shared attribute demand more reads than are performed.
        prop_assert!(
            scalar.service.performed_acquisitions <= scalar.service.demanded_acquisitions
        );
    }
}
