//! Fault-tolerant serving properties (`DESIGN.md` §14.5).
//!
//! Four guarantees are pinned:
//!
//! 1. **Transparency** — the robust service engine at loss 0 with no
//!    crashes and a no-op policy is *bitwise* identical to the lossless
//!    loop, in both exec modes (`collect_rows` is the lever that forces
//!    the robust path without changing semantics).
//! 2. **Reproducibility** — a lossy serve run is a pure function of its
//!    fault seed: same seed, same schedule ⇒ identical outcomes, rows
//!    and energy to the bit.
//! 3. **Deterministic degradation** — shed/timeout decisions replay
//!    identically, shedding respects schedule-order fairness, and a
//!    deadline-degraded query's rows are a prefix of the complete
//!    run's rows.
//! 4. **Crash recovery** — a mid-schedule basestation crash recovers
//!    the plan cache and live queries from checkpoint + WAL without a
//!    cold start, and the run still completes.

// Bitwise f64 equality is the entire point of this suite.
#![allow(clippy::float_cmp)]

use std::path::PathBuf;
use std::sync::Arc;

use acqp::core::exec::ExecMode;
use acqp::core::prelude::*;
use acqp::obs::{NoopSink, Recorder};
use acqp::persist::ServeCheckpoint;
use acqp::sensornet::{
    CrashConfig, EnergyLedger, EnergyModel, FaultModel, ScheduleEntry, ServicePolicy,
};
use acqp::serve::{serve_schedule, ServeConfig, ServeReport};
use proptest::prelude::*;

mod common;
use common::{instance_strategy, Instance};

/// Honors the `PROPTEST_CASES` override the sanitizer CI jobs set.
fn cases(default_n: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("acqp_ws_serve_faults").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn assert_ledgers_bitwise(a: &EnergyLedger, b: &EnergyLedger, ctx: &str) {
    assert_eq!(a.sensing_uj.to_bits(), b.sensing_uj.to_bits(), "{ctx}: sensing_uj");
    assert_eq!(a.board_uj.to_bits(), b.board_uj.to_bits(), "{ctx}: board_uj");
    assert_eq!(a.radio_tx_uj.to_bits(), b.radio_tx_uj.to_bits(), "{ctx}: radio_tx_uj");
    assert_eq!(a.radio_rx_uj.to_bits(), b.radio_rx_uj.to_bits(), "{ctx}: radio_rx_uj");
}

fn serve_instance(
    inst: &Instance,
    schedule: &[ScheduleEntry],
    mode: ExecMode,
    cfg: ServeConfig,
) -> ServeReport {
    serve_schedule(
        &inst.schema,
        &inst.data,
        &inst.data,
        schedule,
        2,
        &EnergyModel::mica_like(),
        inst.data.len(),
        mode,
        cfg,
        &Recorder::disabled(),
    )
    .expect("service run on a well-formed instance")
}

/// Staggered two-signature schedule over the whole instance trace.
fn staggered_schedule(inst: &Instance) -> Vec<ScheduleEntry> {
    let epochs = inst.data.len();
    let sub = Query::new(vec![inst.query.pred(0)]).expect("one checked predicate");
    vec![
        ScheduleEntry::new(inst.query.clone(), 0, epochs),
        ScheduleEntry::new(sub, epochs / 3, epochs),
        ScheduleEntry::new(inst.query.clone(), epochs / 2, epochs / 2),
    ]
}

/// A fixed instance with a cheap always-flipping attribute so deadline
/// windows always contain results, plus two expensive attributes.
fn small_instance() -> (Schema, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 4, 80.0),
        Attribute::new("b", 4, 60.0),
        Attribute::new("t", 2, 1.0),
    ])
    .unwrap();
    let rows: Vec<Vec<u16>> = (0..120u16).map(|i| vec![(i / 5) % 4, (i / 7) % 4, i % 2]).collect();
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 1, 2), Pred::in_range(2, 1, 1)]).unwrap();
    (schema, data, query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(16), ..ProptestConfig::default() })]

    /// Forcing the robust engine (`collect_rows`) at loss 0 with no
    /// crashes and a no-op policy changes nothing: every count and
    /// every ledger matches the lossless loop bitwise, in both modes.
    #[test]
    fn robust_engine_at_loss_zero_is_bitwise_transparent(inst in instance_strategy()) {
        let schedule = staggered_schedule(&inst);
        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            let base = serve_instance(&inst, &schedule, mode, ServeConfig::default());
            let robust = serve_instance(
                &inst,
                &schedule,
                mode,
                ServeConfig {
                    faults: FaultModel { seed: 99, ..FaultModel::none() },
                    collect_rows: true,
                    ..ServeConfig::default()
                },
            );
            prop_assert_eq!(base.service.tuples(), robust.service.tuples(), "{:?}", mode);
            prop_assert_eq!(base.service.results(), robust.service.results(), "{:?}", mode);
            prop_assert!(robust.service.all_correct());
            assert_ledgers_bitwise(
                &base.service.network,
                &robust.service.network,
                &format!("{mode:?}: network"),
            );
            for (i, (a, b)) in
                base.service.per_mote.iter().zip(&robust.service.per_mote).enumerate()
            {
                assert_ledgers_bitwise(a, b, &format!("{mode:?}: mote {i}"));
            }
            prop_assert_eq!(
                base.service.bs_tx_uj.to_bits(),
                robust.service.bs_tx_uj.to_bits(),
                "{:?}: dissemination energy", mode
            );
            for (i, (a, b)) in
                base.service.queries.iter().zip(&robust.service.queries).enumerate()
            {
                prop_assert_eq!(a.tuples, b.tuples, "q{}: tuples", i);
                prop_assert_eq!(a.results, b.results, "q{}: results", i);
                prop_assert_eq!(a.cache_hit, b.cache_hit, "q{}: cache_hit", i);
                prop_assert_eq!(a.completed_at, b.completed_at, "q{}: completed_at", i);
                prop_assert_eq!(a.status, b.status, "q{}: status", i);
                // Rows are collected on the robust path only, and every
                // delivered result is accounted for at loss 0.
                prop_assert_eq!(b.rows.len(), b.results, "q{}: rows", i);
            }
            // The robust report exists but records nothing degraded.
            let rob = robust.service.robustness.as_ref().expect("robust path taken");
            prop_assert_eq!(rob.lost_results, 0);
            prop_assert_eq!(rob.aborted_tuples, 0);
            prop_assert_eq!(rob.shed + rob.timed_out, 0);
            prop_assert_eq!(rob.crashes, 0);
        }
    }

    /// A lossy serve run with sensing failures is bitwise reproducible
    /// for a fixed fault seed.
    #[test]
    fn lossy_serve_is_reproducible_for_a_fixed_seed(
        inst in instance_strategy(),
        seed in any::<u64>(),
    ) {
        let schedule = staggered_schedule(&inst);
        let cfg = || ServeConfig {
            faults: FaultModel { sensing_fail_rate: 0.05, ..FaultModel::lossy(seed, 0.25) },
            collect_rows: true,
            ..ServeConfig::default()
        };
        let a = serve_instance(&inst, &schedule, ExecMode::Scalar, cfg());
        let b = serve_instance(&inst, &schedule, ExecMode::Scalar, cfg());
        assert_ledgers_bitwise(&a.service.network, &b.service.network, "network");
        for (i, (x, y)) in a.service.per_mote.iter().zip(&b.service.per_mote).enumerate() {
            assert_ledgers_bitwise(x, y, &format!("mote {i}"));
        }
        prop_assert_eq!(a.service.bs_tx_uj.to_bits(), b.service.bs_tx_uj.to_bits());
        for (i, (x, y)) in a.service.queries.iter().zip(&b.service.queries).enumerate() {
            prop_assert_eq!(x.results, y.results, "q{}: results", i);
            prop_assert_eq!(x.status, y.status, "q{}: status", i);
            prop_assert_eq!(&x.rows, &y.rows, "q{}: delivered rows", i);
        }
        let ra = a.service.robustness.as_ref().unwrap();
        let rb = b.service.robustness.as_ref().unwrap();
        prop_assert_eq!(ra.delivered_results, rb.delivered_results);
        prop_assert_eq!(ra.lost_results, rb.lost_results);
        prop_assert_eq!(ra.aborted_tuples, rb.aborted_tuples);
        prop_assert_eq!(ra.offline_epochs, rb.offline_epochs);
    }
}

/// Same schedule + same seed ⇒ the exact same shed/timeout decisions,
/// and shedding respects schedule-order fairness: an entry is only ever
/// shed after exhausting its queue wait, and entries of the same
/// signature admitted earlier are never shed in favor of later ones.
#[test]
fn shed_and_timeout_decisions_replay_deterministically() {
    let (schema, data, query) = small_instance();
    let epochs = data.len();
    let cheap = Query::new(vec![Pred::in_range(2, 1, 1)]).unwrap();
    let schedule = vec![
        ScheduleEntry::new(query.clone(), 0, 24),
        ScheduleEntry::new(query.clone(), 0, 24),
        ScheduleEntry::new(cheap.clone(), 2, 20).with_deadline(6),
        ScheduleEntry::new(query.clone(), 4, 24),
        ScheduleEntry::new(query, 6, 12).with_deadline(4),
        ScheduleEntry::new(cheap, 8, 16),
    ];
    let run = || {
        serve_schedule(
            &schema,
            &data,
            &data,
            &schedule,
            3,
            &EnergyModel::mica_like(),
            epochs,
            ExecMode::Scalar,
            ServeConfig {
                policy: ServicePolicy {
                    epoch_cost_budget: Some(150.0),
                    max_queue_epochs: 4,
                    fair_share: 1,
                    ..ServicePolicy::default()
                },
                collect_rows: true,
                ..ServeConfig::default()
            },
            &Recorder::disabled(),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.service.queries.len(), b.service.queries.len());
    for (i, (x, y)) in a.service.queries.iter().zip(&b.service.queries).enumerate() {
        assert_eq!(x.status, y.status, "q{i}: status");
        assert_eq!(x.shed_at, y.shed_at, "q{i}: shed epoch");
        assert_eq!(x.admit, y.admit, "q{i}: admit epoch");
        assert_eq!(x.completed_at, y.completed_at, "q{i}: completed_at");
        assert_eq!(x.rows, y.rows, "q{i}: rows");
    }
    // The overloaded budget must actually defer work, and anything shed
    // waited out its full queue allowance first.
    let rob = a.service.robustness.as_ref().expect("policy forces the robust path");
    assert!(rob.budget_deferrals > 0, "budget never binds: {rob:?}");
    assert!(
        a.service.queries.iter().any(|q| q.status != QueryStatus::Complete),
        "scenario must actually degrade at least one query: {:?}",
        a.service.queries.iter().map(|q| q.status).collect::<Vec<_>>()
    );
    for (i, q) in a.service.queries.iter().enumerate() {
        if let Some(at) = q.shed_at {
            assert_eq!(q.status, QueryStatus::Shed, "q{i}");
            assert!(
                at >= schedule[i].admit + 4,
                "q{i} shed at {at} before its max_queue_epochs expired"
            );
        }
    }
    // Fairness: among same-signature entries, admission order follows
    // schedule order — a later entry never starts before an earlier one.
    for i in 0..schedule.len() {
        for j in (i + 1)..schedule.len() {
            let (qi, qj) = (&a.service.queries[i], &a.service.queries[j]);
            if schedule[i].query == schedule[j].query
                && qi.shed_at.is_none()
                && qj.shed_at.is_none()
            {
                assert!(
                    qi.admit <= qj.admit,
                    "schedule order violated: q{i} admitted {} after q{j} at {}",
                    qi.admit,
                    qj.admit
                );
            }
        }
    }
}

/// A deadline that cuts a query short degrades it to a partial result
/// whose delivered rows are an exact prefix of the complete run's.
#[test]
fn deadline_partial_rows_are_a_prefix_of_the_complete_run() {
    let (schema, data, _) = small_instance();
    let epochs = 40;
    let query = Query::new(vec![Pred::in_range(2, 1, 1)]).unwrap();
    let run = |sched: Vec<ScheduleEntry>| {
        serve_schedule(
            &schema,
            &data,
            &data,
            &sched,
            3,
            &EnergyModel::mica_like(),
            epochs,
            ExecMode::Scalar,
            ServeConfig { collect_rows: true, ..ServeConfig::default() },
            &Recorder::disabled(),
        )
        .unwrap()
    };
    let full = run(vec![ScheduleEntry::new(query.clone(), 0, 30)]);
    let cut = run(vec![ScheduleEntry::new(query, 0, 30).with_deadline(7)]);
    let f = &full.service.queries[0];
    let t = &cut.service.queries[0];
    assert_eq!(f.status, QueryStatus::Complete);
    assert_eq!(t.status, QueryStatus::TimedOut);
    assert_eq!(t.completed_at, 7, "deadline cuts the window");
    assert!(!t.rows.is_empty() && t.rows.len() < f.rows.len());
    assert_eq!(&f.rows[..t.rows.len()], &t.rows[..], "partial rows must be a prefix");
    assert!(t.rows.iter().all(|&(e, _)| e < 7));
    assert_eq!(cut.timed_out, 1);
    assert_eq!(full.timed_out, 0);
}

/// A mid-schedule basestation crash with checkpointing on recovers the
/// serve state from checkpoint + WAL — no cold start — and the
/// schedule still runs to completion with correct verdicts.
#[test]
fn mid_schedule_crash_recovers_from_checkpoint_without_cold_start() {
    let dir = tmp("mid_schedule");
    let (schema, data, query) = small_instance();
    let epochs = data.len();
    let cheap = Query::new(vec![Pred::in_range(2, 1, 1)]).unwrap();
    let schedule = vec![
        ScheduleEntry::new(query.clone(), 0, epochs),
        ScheduleEntry::new(cheap, 10, 60),
        ScheduleEntry::new(query, 30, 40),
    ];
    let rep = serve_schedule(
        &schema,
        &data,
        &data,
        &schedule,
        3,
        &EnergyModel::mica_like(),
        epochs,
        ExecMode::Scalar,
        ServeConfig {
            crash: CrashConfig {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every: 8,
                crash_epochs: vec![20],
                crash_rate: 0.0,
            },
            ..ServeConfig::default()
        },
        &Recorder::disabled(),
    )
    .unwrap();
    let rob = rep.service.robustness.as_ref().expect("crash config forces the robust path");
    assert_eq!(rob.crashes, 1);
    assert_eq!(rob.cold_starts, 0, "a written checkpoint must be found on recovery");
    assert_eq!(rob.corrupt_snapshots, 0);
    assert!(rob.checkpoints_written >= 2, "cadence 8 over {epochs} epochs: {rob:?}");
    assert!(rob.wal_replayed > 0, "the off-cadence crash must replay a WAL tail");
    assert!(rob.recovery_rediss_uj > 0.0, "re-dissemination must be charged");
    assert!(rep.service.all_correct(), "recovered run must still verify");
    for (i, q) in rep.service.queries.iter().enumerate() {
        assert!(q.admitted, "q{i} must be admitted");
        assert_eq!(q.status, QueryStatus::Complete, "q{i} must complete after recovery");
    }
    // Determinism across the crash boundary: the same crashy run
    // replays bitwise when repeated in a fresh directory.
    let dir2 = tmp("mid_schedule_again");
    let rep2 = serve_schedule(
        &schema,
        &data,
        &data,
        &schedule,
        3,
        &EnergyModel::mica_like(),
        epochs,
        ExecMode::Scalar,
        ServeConfig {
            crash: CrashConfig {
                checkpoint_dir: Some(dir2.clone()),
                checkpoint_every: 8,
                crash_epochs: vec![20],
                crash_rate: 0.0,
            },
            ..ServeConfig::default()
        },
        &Recorder::disabled(),
    )
    .unwrap();
    assert_ledgers_bitwise(&rep.service.network, &rep2.service.network, "crashy replay");
    assert_eq!(
        rep.service.bs_tx_uj.to_bits(),
        rep2.service.bs_tx_uj.to_bits(),
        "dissemination energy incl. recovery must replay bitwise"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

/// A checkpointed plan whose wire bytes rot on disk *under* the
/// checksum (re-sealed, so the snapshot itself validates) must be
/// demoted on recovery — dropped from the restored plan cache and
/// counted in `verify.recovery.demoted` — and the service re-plans the
/// query instead of disseminating the corrupt bytes. The run still
/// completes with correct verdicts.
#[test]
fn corrupted_checkpoint_plan_is_demoted_to_replan() {
    let dir = tmp("demote");
    let (schema, data, query) = small_instance();
    let epochs = data.len();
    let schedule = vec![ScheduleEntry::new(query.clone(), 0, epochs)];
    let run = |crash: CrashConfig, rec: &Recorder| {
        serve_schedule(
            &schema,
            &data,
            &data,
            &schedule,
            3,
            &EnergyModel::mica_like(),
            epochs,
            ExecMode::Scalar,
            ServeConfig { crash, ..ServeConfig::default() },
            rec,
        )
        .unwrap()
    };

    // Run 1: no crashes, checkpoints on cadence — leaves snapshots with
    // a populated plan cache on disk.
    let first = run(
        CrashConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 8,
            crash_epochs: vec![],
            crash_rate: 0.0,
        },
        &Recorder::disabled(),
    );
    assert!(
        first.service.robustness.as_ref().unwrap().checkpoints_written > 0,
        "run 1 must leave snapshots behind"
    );

    // Keep only the oldest snapshot (an epoch the next run's crash will
    // be past), drop the WAL, and rot the plan bytes inside it. The
    // record is re-encoded, so the file-level checksum is *valid* — the
    // corruption is visible to the plan verifier alone.
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("snap-"))
        .collect();
    snaps.sort();
    assert!(!snaps.is_empty());
    let keep = snaps.remove(0);
    for p in snaps {
        std::fs::remove_file(p).unwrap();
    }
    for entry in std::fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p != keep {
            std::fs::remove_file(p).unwrap();
        }
    }
    let mut cp = ServeCheckpoint::from_file_bytes(&std::fs::read(&keep).unwrap()).unwrap();
    assert!(!cp.plans.is_empty(), "checkpoint must carry a plan cache");
    let tampered = cp.plans.len();
    for p in cp.plans.iter_mut() {
        // Clobber the root tag: structurally garbage, caught by the
        // verifier's first pass.
        p.plan.wire[0] = 0x42;
    }
    std::fs::write(&keep, cp.to_file_bytes()).unwrap();
    assert!(
        ServeCheckpoint::from_file_bytes(&std::fs::read(&keep).unwrap()).is_ok(),
        "tampered snapshot must still pass the checksum layer"
    );

    // Run 2: crash past the kept snapshot's epoch. Recovery reads the
    // re-sealed snapshot, verification rejects every rotted plan, and
    // the policy re-plans on demand.
    let rec = Recorder::new(Arc::new(NoopSink));
    let second = run(
        CrashConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 0,
            crash_epochs: vec![10],
            crash_rate: 0.0,
        },
        &rec,
    );
    let rob = second.service.robustness.as_ref().unwrap();
    assert_eq!(rob.crashes, 1);
    assert_eq!(rob.cold_starts, 0, "the tampered snapshot must be accepted by the store");
    let snap = rec.drain();
    assert_eq!(
        snap.counter("verify.recovery.demoted"),
        tampered as u64,
        "every rotted plan must be demoted: {:?}",
        snap.counters
    );
    assert!(snap.counter("verify.rejected") >= tampered as u64);
    // Demotion means replan, not failure: the query survives the crash
    // and completes with correct verdicts.
    assert!(second.service.all_correct());
    for (i, q) in second.service.queries.iter().enumerate() {
        assert!(q.admitted, "q{i} must be admitted");
        assert_eq!(q.status, QueryStatus::Complete, "q{i} must complete after demotion");
    }

    // Control: the same crash against untampered snapshots demotes
    // nothing — demotion is caused by the corruption, not by recovery.
    let dir2 = tmp("demote_control");
    let rec2 = Recorder::new(Arc::new(NoopSink));
    run(
        CrashConfig {
            checkpoint_dir: Some(dir2.clone()),
            checkpoint_every: 8,
            crash_epochs: vec![],
            crash_rate: 0.0,
        },
        &Recorder::disabled(),
    );
    run(
        CrashConfig {
            checkpoint_dir: Some(dir2.clone()),
            checkpoint_every: 0,
            crash_epochs: vec![10],
            crash_rate: 0.0,
        },
        &rec2,
    );
    let snap2 = rec2.drain();
    assert_eq!(snap2.counter("verify.recovery.demoted"), 0, "{:?}", snap2.counters);
    assert!(snap2.counter("verify.checked") > 0, "recovery must have verified plans");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}
