//! Differential harness: the vectorized columnar executor against the
//! scalar per-tuple interpreter (`DESIGN.md` §12).
//!
//! The batch path is not "approximately" the scalar path — every
//! per-row outcome (verdict, `f64` cost to the bit, acquisition order),
//! every measured report and every metered `exec.*` series must be
//! *identical*, because the prepared plan replays the scalar charge
//! kernel once per node at build time rather than re-deriving costs.
//! These tests hold that equivalence over randomized instances, every
//! planner family, both cost models, and the edge geometry (empty
//! batches, batch-boundary remainders, all-pass / all-fail predicates,
//! single-tuple batches). `ExecMode::Scalar` must additionally be
//! bitwise-transparent: selecting it changes nothing at all versus the
//! seed entry points.

// Bitwise f64 equality is the entire point of this suite.
#![allow(clippy::float_cmp)]

use std::sync::Arc;

use acqp::core::batch::{BatchExecutor, BatchOutcome, ColumnBatch, PreparedPlan};
use acqp::core::costmodel::CostModel;
use acqp::core::exec::{execute_model, ExecMetrics, ExecMode, RowSource};
use acqp::core::prelude::*;
use acqp::obs::{NoopSink, Recorder, Snapshot};
use proptest::prelude::*;

mod common;
use common::{instance_strategy, Instance};

/// Honors the `PROPTEST_CASES` override the sanitizer CI jobs set.
fn cases(default_n: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

/// The plan families a random instance exercises: both sequential
/// planners, the conditional heuristic, and the decided corners.
fn plans_for(schema: &Schema, query: &Query, data: &Dataset) -> Vec<Plan> {
    let est = CountingEstimator::with_ranges(data, Ranges::root(schema));
    let mut plans = vec![Plan::pass(), Plan::fail()];
    plans.push(SeqPlanner::naive().plan(schema, query, &est).unwrap());
    plans.push(SeqPlanner::auto().plan(schema, query, &est).unwrap());
    plans.push(GreedyPlanner::new(5).plan(schema, query, &est).unwrap());
    plans
}

/// Cost models under test: the paper's per-attribute pricing and an
/// order-dependent board model grouping the first attributes.
fn models_for(schema: &Schema) -> Vec<CostModel> {
    let shared: Vec<AttrId> = (0..schema.len().min(2)).collect();
    vec![CostModel::PerAttribute, CostModel::boards(schema.len(), &[(shared, 25.0)])]
}

/// Asserts slot-by-slot bitwise agreement between the batch outcomes
/// and the scalar executor on `rows`.
#[allow(clippy::too_many_arguments)]
fn assert_rows_bitwise(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &CostModel,
    data: &Dataset,
    batch: &ColumnBatch<'_>,
    out: &BatchOutcome,
    prepared: &PreparedPlan,
    first_row: usize,
) {
    for slot in 0..batch.rows() {
        if !batch.is_valid(slot) {
            continue;
        }
        let row = first_row + slot;
        let scalar = execute_model(plan, query, schema, model, &mut RowSource::new(data, row));
        assert_eq!(scalar.verdict, out.verdict(slot), "row {row}: verdict");
        assert_eq!(
            scalar.cost.to_bits(),
            out.cost(slot).to_bits(),
            "row {row}: cost {} vs {}",
            scalar.cost,
            out.cost(slot)
        );
        assert_eq!(scalar.acquired, out.acquired(prepared, slot), "row {row}: chain");
    }
}

/// A snapshot reduced to comparable form: counters and bit-cast float
/// values by name, hists rendered to strings.
type SeriesView = (Vec<(String, u64)>, Vec<(String, u64)>, Vec<String>);

/// Drops the `exec.batch.*` subtree — the only series the vectorized
/// path is allowed to add on top of the scalar ledger.
fn without_batch_series(snap: &Snapshot) -> SeriesView {
    let counters = snap
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with("exec.batch."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let values = snap.values.iter().map(|(k, v)| (k.clone(), v.to_bits())).collect();
    let hists = snap
        .hists
        .iter()
        .filter(|(k, _)| !k.starts_with("exec.batch."))
        .map(|(k, v)| format!("{k}:{v:?}"))
        .collect();
    (counters, values, hists)
}

fn metered_snapshot(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &CostModel,
    data: &Dataset,
    mode: ExecMode,
) -> (CostReport, Snapshot) {
    let rec = Recorder::new(Arc::new(NoopSink));
    let m = ExecMetrics::new(&rec, schema, query);
    let r = measure_metered_mode(plan, query, schema, model, data, 0..data.len(), mode, &m);
    (r, rec.drain())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(24), ..ProptestConfig::default() })]

    /// Per-row outcomes: verdict, bitwise cost, and the acquisition
    /// chain (order included) agree for every plan family and both cost
    /// models, over full-dataset batches.
    #[test]
    fn batch_outcomes_match_scalar_bitwise(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let mut exec = BatchExecutor::new();
        let mut out = BatchOutcome::default();
        for plan in plans_for(&schema, &query, &data) {
            for model in models_for(&schema) {
                let prepared = PreparedPlan::new(&plan, &query, &schema, &model);
                let batch = ColumnBatch::from_dataset(&data);
                exec.execute_batch(&prepared, &batch, None, &mut out);
                assert_rows_bitwise(
                    &plan, &query, &schema, &model, &data, &batch, &out, &prepared, 0,
                );
            }
        }
    }

    /// Measured reports are bitwise-identical across modes, and
    /// `ExecMode::Scalar` is bitwise-transparent against the seed
    /// measurement entry point.
    #[test]
    fn measured_reports_bitwise_equal(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        for plan in plans_for(&schema, &query, &data) {
            for model in models_for(&schema) {
                let seed = measure_model(&plan, &query, &schema, &model, &data);
                let s = measure_mode(
                    &plan, &query, &schema, &model, &data, 0..data.len(), ExecMode::Scalar);
                let v = measure_mode(
                    &plan, &query, &schema, &model, &data, 0..data.len(), ExecMode::Vectorized);
                for (a, b) in [(&seed, &s), (&s, &v)] {
                    prop_assert_eq!(a.tuples, b.tuples);
                    prop_assert_eq!(a.all_correct, b.all_correct);
                    prop_assert_eq!(a.mean_cost.to_bits(), b.mean_cost.to_bits());
                    prop_assert_eq!(a.max_cost.to_bits(), b.max_cost.to_bits());
                    prop_assert_eq!(a.pass_rate.to_bits(), b.pass_rate.to_bits());
                }
            }
        }
    }

    /// Metered runs: the scalar-mode snapshot equals the seed metered
    /// path exactly; the vectorized snapshot matches on every series
    /// except the `exec.batch.*` subtree it adds (scalar runs carry the
    /// subtree registered at zero).
    #[test]
    fn metered_series_bitwise_equal(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let plan = GreedyPlanner::new(5)
            .plan(&schema, &query, &CountingEstimator::new(&data))
            .unwrap();
        let model = CostModel::PerAttribute;

        let rec = Recorder::new(Arc::new(NoopSink));
        let m = ExecMetrics::new(&rec, &schema, &query);
        let seed_r = measure_metered(&plan, &query, &schema, &model, &data, 0..data.len(), &m);
        let seed_snap = rec.drain();

        let (s_r, s_snap) =
            metered_snapshot(&plan, &query, &schema, &model, &data, ExecMode::Scalar);
        let (v_r, v_snap) =
            metered_snapshot(&plan, &query, &schema, &model, &data, ExecMode::Vectorized);
        prop_assert_eq!(seed_r.mean_cost.to_bits(), s_r.mean_cost.to_bits());
        prop_assert_eq!(s_r.mean_cost.to_bits(), v_r.mean_cost.to_bits());

        // Scalar mode: byte-for-byte the seed metered path (including
        // the zero-valued exec.batch.* registrations).
        prop_assert_eq!(&seed_snap.counters, &s_snap.counters);
        prop_assert_eq!(&seed_snap.hists, &s_snap.hists);

        // Vectorized: identical outside the exec.batch.* subtree.
        prop_assert_eq!(without_batch_series(&s_snap), without_batch_series(&v_snap));
        prop_assert_eq!(v_snap.counter("exec.batch.rows"), data.len() as u64);
        let expect_batches = data.len().div_ceil(BATCH_ROWS).max(1) as u64;
        prop_assert_eq!(v_snap.counter("exec.batch.batches"), expect_batches);
    }

    /// Single-tuple batches: each row replayed through a one-row
    /// `ColumnBatch` window agrees with the scalar executor bitwise.
    #[test]
    fn single_tuple_batches_match(inst in instance_strategy()) {
        let Instance { schema, data, query } = inst;
        let plan = GreedyPlanner::new(5)
            .plan(&schema, &query, &CountingEstimator::new(&data))
            .unwrap();
        let model = CostModel::PerAttribute;
        let prepared = PreparedPlan::new(&plan, &query, &schema, &model);
        let mut exec = BatchExecutor::new();
        let mut out = BatchOutcome::default();
        for row in (0..data.len()).step_by(7) {
            let batch = ColumnBatch::slice(&data, row, 1);
            exec.execute_batch(&prepared, &batch, None, &mut out);
            assert_rows_bitwise(
                &plan, &query, &schema, &model, &data, &batch, &out, &prepared, row,
            );
        }
    }
}

/// A ramp dataset: `rows` tuples over two sensors and one cheap clock,
/// values chosen so predicates split the population unevenly.
fn ramp(rows: usize) -> (Schema, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 8, 10.0),
        Attribute::new("b", 8, 20.0),
        Attribute::new("t", 8, 1.0),
    ])
    .unwrap();
    let data = Dataset::from_rows(
        &schema,
        (0..rows)
            .map(|i| vec![(i % 8) as u16, ((i / 3) % 8) as u16, ((i * 5) % 8) as u16])
            .collect(),
    )
    .unwrap();
    let query = Query::new(vec![Pred::in_range(0, 2, 5), Pred::not_in_range(1, 3, 6)]).unwrap();
    (schema, data, query)
}

fn assert_reports_bitwise(plan: &Plan, query: &Query, schema: &Schema, data: &Dataset) {
    let model = CostModel::PerAttribute;
    let s = measure_mode(plan, query, schema, &model, data, 0..data.len(), ExecMode::Scalar);
    let v = measure_mode(plan, query, schema, &model, data, 0..data.len(), ExecMode::Vectorized);
    assert_eq!(s.tuples, v.tuples);
    assert_eq!(s.all_correct, v.all_correct);
    assert_eq!(s.mean_cost.to_bits(), v.mean_cost.to_bits());
    assert_eq!(s.max_cost.to_bits(), v.max_cost.to_bits());
    assert_eq!(s.pass_rate.to_bits(), v.pass_rate.to_bits());
}

/// Empty datasets: both modes return the zero report and the batch path
/// tolerates zero-row windows.
#[test]
fn empty_dataset_is_equal_and_safe() {
    let (schema, data, query) = ramp(16);
    let empty = Dataset::from_rows(&schema, Vec::new()).unwrap();
    let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
    assert_reports_bitwise(&plan, &query, &schema, &empty);

    let prepared = PreparedPlan::new(&plan, &query, &schema, &CostModel::PerAttribute);
    let mut exec = BatchExecutor::new();
    let mut out = BatchOutcome::default();
    let batch = ColumnBatch::slice(&data, 0, 0);
    exec.execute_batch(&prepared, &batch, None, &mut out);
    assert_eq!(out.rows(), 0);
}

/// Row counts straddling the batch width: one short, exact, one over —
/// the remainder window must fold identically.
#[test]
fn batch_boundary_remainders_are_bitwise_equal() {
    for rows in [BATCH_ROWS - 1, BATCH_ROWS, BATCH_ROWS + 1, 2 * BATCH_ROWS + 3] {
        let (schema, data, query) = ramp(rows);
        let est = CountingEstimator::new(&data);
        for plan in [
            GreedyPlanner::new(4).plan(&schema, &query, &est).unwrap(),
            SeqPlanner::auto().plan(&schema, &query, &est).unwrap(),
        ] {
            assert_reports_bitwise(&plan, &query, &schema, &data);
        }
    }
}

/// Degenerate selectivities: predicates that accept everything and
/// predicates that reject everything, plus the decided plans.
#[test]
fn all_pass_and_all_fail_predicates_are_bitwise_equal() {
    let (schema, data, _) = ramp(BATCH_ROWS + 17);
    let all_pass = Query::new(vec![Pred::in_range(0, 0, 7), Pred::in_range(1, 0, 7)]).unwrap();
    let all_fail = Query::new(vec![Pred::not_in_range(0, 0, 7), Pred::in_range(1, 0, 7)]).unwrap();
    for query in [&all_pass, &all_fail] {
        for plan in [
            Plan::pass(),
            Plan::fail(),
            Plan::Seq(SeqOrder::new(vec![0, 1])),
            Plan::split(
                2,
                4,
                Plan::Seq(SeqOrder::new(vec![0, 1])),
                Plan::Seq(SeqOrder::new(vec![1, 0])),
            ),
        ] {
            let model = CostModel::PerAttribute;
            let s =
                measure_mode(&plan, query, &schema, &model, &data, 0..data.len(), ExecMode::Scalar);
            let v = measure_mode(
                &plan,
                query,
                &schema,
                &model,
                &data,
                0..data.len(),
                ExecMode::Vectorized,
            );
            assert_eq!(s.mean_cost.to_bits(), v.mean_cost.to_bits());
            assert_eq!(s.pass_rate.to_bits(), v.pass_rate.to_bits());
            assert_eq!(s.all_correct, v.all_correct);
        }
    }
}

/// Gappy row subsets exercise the validity-mask path; non-monotone
/// subsets exercise the documented scalar fallback. Either way the
/// report is bitwise the scalar loop's.
#[test]
fn row_subsets_and_fallback_are_bitwise_equal() {
    let (schema, data, query) = ramp(BATCH_ROWS + 100);
    let plan = Plan::Seq(SeqOrder::new(vec![1, 0]));
    let model = CostModel::PerAttribute;
    let gappy: Vec<usize> = (0..data.len()).filter(|i| i % 3 != 1).collect();
    let backwards: Vec<usize> = (0..data.len()).rev().collect();
    for rows in [&gappy, &backwards] {
        let s = measure_mode(
            &plan,
            &query,
            &schema,
            &model,
            &data,
            rows.iter().copied(),
            ExecMode::Scalar,
        );
        let v = measure_mode(
            &plan,
            &query,
            &schema,
            &model,
            &data,
            rows.iter().copied(),
            ExecMode::Vectorized,
        );
        assert_eq!(s.tuples, v.tuples);
        assert_eq!(s.mean_cost.to_bits(), v.mean_cost.to_bits());
        assert_eq!(s.max_cost.to_bits(), v.max_cost.to_bits());
        assert_eq!(s.pass_rate.to_bits(), v.pass_rate.to_bits());
    }
}

/// Concurrent replays over shared plans, data and one metrics ledger:
/// the TSan target. Every thread's report must equal the serial one,
/// and the shared counters must account for every thread exactly.
#[test]
fn concurrent_vectorized_replay_is_exact() {
    let (schema, data, query) = ramp(2 * BATCH_ROWS);
    let plan = GreedyPlanner::new(4).plan(&schema, &query, &CountingEstimator::new(&data)).unwrap();
    let model = CostModel::PerAttribute;
    let serial =
        measure_mode(&plan, &query, &schema, &model, &data, 0..data.len(), ExecMode::Vectorized);
    for threads in [2usize, 4] {
        let rec = Recorder::new(Arc::new(NoopSink));
        let m = ExecMetrics::new(&rec, &schema, &query);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let r = measure_metered_mode(
                        &plan,
                        &query,
                        &schema,
                        &model,
                        &data,
                        0..data.len(),
                        ExecMode::Vectorized,
                        &m,
                    );
                    assert_eq!(r.mean_cost.to_bits(), serial.mean_cost.to_bits());
                    assert_eq!(r.tuples, serial.tuples);
                });
            }
        });
        let snap = rec.drain();
        assert_eq!(snap.counter("exec.tuples"), (threads * data.len()) as u64);
        assert_eq!(snap.counter("exec.batch.rows"), (threads * data.len()) as u64);
    }
}
