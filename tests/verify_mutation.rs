//! Mutation corpus for the static verifier (`DESIGN.md` §15).
//!
//! Every valid wire plan in a small corpus is systematically corrupted
//! — single-byte flips, truncations, and splices — and each mutant must
//! be either
//!
//! * **rejected** by `verify_wire` with a typed [`VerifyError`], in
//!   which case both wire interpreters must still be panic-free on the
//!   garbage (the checked one may error, the total one must return),
//!   or
//! * **accepted**, in which case it must execute like a real plan:
//!   `execute_wire` succeeds, agrees bitwise with the certificate-gated
//!   fast path, and every row's cost stays inside the certified bound.
//!
//! Across the corpus at least six distinct `VerifyError::class()`
//! labels must be observed — the acceptance bar for "corruption classes
//! rejected with typed errors" — and corrupting a *claim* (not the
//! bytes) must surface as the `cost-claim` class.

#![allow(clippy::float_cmp)]

use std::collections::BTreeSet;

use acqp::core::prelude::*;
use acqp::sensornet::interp::{execute_wire, execute_wire_verified};
use acqp::verify::{verify_wire, VerifyError};

/// One corpus entry: a context and a wire image that verifies clean.
struct Entry {
    label: &'static str,
    schema: Schema,
    query: Query,
    wire: Vec<u8>,
}

/// Planner-produced and handcrafted wires, all certified valid.
fn corpus() -> Vec<Entry> {
    let mut out = Vec::new();

    // Planner-produced plans over a correlated instance: sequential
    // (k=0) and split-heavy (k=3) shapes.
    let schema = Schema::new(vec![
        Attribute::new("a", 6, 1.0),
        Attribute::new("b", 4, 50.0),
        Attribute::new("c", 5, 8.0),
    ])
    .unwrap();
    let rows: Vec<Vec<u16>> =
        (0..80u16).map(|i| vec![i * 7 % 6, (i / 3) % 4, (i * 3 + i / 5) % 5]).collect();
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![
        Pred::in_range(0, 1, 4),
        Pred::not_in_range(1, 1, 2),
        Pred::in_range(2, 0, 2),
    ])
    .unwrap();
    let est = CountingEstimator::new(&data);
    for (label, k) in [("seq", 0usize), ("greedy", 3)] {
        let plan = GreedyPlanner::new(k).plan(&schema, &query, &est).unwrap();
        out.push(Entry {
            label,
            schema: schema.clone(),
            query: query.clone(),
            wire: plan.encode(),
        });
    }

    // Handcrafted nested resplit: split(a<3) { split(a<2) { seq[0,1],
    // seq[1] }, seq[1,0] }. Guarantees the corpus contains split
    // headers whose attr/cut bytes, once flipped, land in the
    // attr-out-of-range, cut-out-of-domain and dead-arm classes.
    let two = Schema::new(vec![Attribute::new("a", 6, 1.0), Attribute::new("b", 4, 50.0)]).unwrap();
    let two_q = Query::new(vec![Pred::in_range(0, 1, 4), Pred::not_in_range(1, 1, 2)]).unwrap();
    let nested = vec![
        0x03, 0, 3, 0, // split a < 3
        0x03, 0, 2, 0, // lo: split a < 2 (re-split inside [0,2])
        0x02, 2, 0, 1, // lo-lo: seq [0,1]
        0x02, 1, 1, // lo-hi: seq [1]
        0x02, 2, 1, 0, // hi: seq [1,0]
    ];
    out.push(Entry { label: "nested", schema: two.clone(), query: two_q.clone(), wire: nested });

    // Decided leaves in the wire: split(a<2) { reject, seq[0,1] }.
    let decided = vec![0x03, 0, 2, 0, 0x00, 0x02, 2, 0, 1];
    out.push(Entry { label: "decided", schema: two, query: two_q, wire: decided });

    for e in &out {
        verify_wire(&e.wire, &e.query, &e.schema).unwrap_or_else(|err| {
            panic!("{}: corpus entry invalid: {err} ({:?})", e.label, e.wire)
        });
    }
    out
}

/// All systematic corruptions of one wire image: every single-byte
/// flip under three masks, every truncation, and a handful of splices
/// (insertions, chunk duplication, self-append).
fn mutants(wire: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for i in 0..wire.len() {
        for mask in [0x01u8, 0x80, 0xff] {
            let mut m = wire.to_vec();
            m[i] ^= mask;
            out.push(m);
        }
    }
    for k in 0..wire.len() {
        out.push(wire[..k].to_vec());
    }
    for i in 0..=wire.len() {
        for b in [0x00u8, 0x01, 0x42] {
            let mut m = wire.to_vec();
            m.insert(i, b);
            out.push(m);
        }
    }
    // Chunk splice: duplicate the middle third in place.
    if wire.len() >= 3 {
        let (lo, hi) = (wire.len() / 3, 2 * wire.len() / 3);
        let mut m = wire.to_vec();
        let chunk: Vec<u8> = wire[lo..hi].to_vec();
        for (off, b) in chunk.into_iter().enumerate() {
            m.insert(hi + off, b);
        }
        out.push(m);
    }
    // Self-append: a valid plan followed by itself must trip the
    // whole-buffer-consumption rule.
    let mut m = wire.to_vec();
    m.extend_from_slice(wire);
    out.push(m);
    out
}

#[test]
fn every_mutant_is_rejected_or_interpreter_identical() {
    let corpus = corpus();
    let mut classes: BTreeSet<&'static str> = BTreeSet::new();
    let mut rejected = 0usize;
    let mut accepted = 0usize;

    // A fixed probe instance per arity: enough rows to exercise both
    // split arms, cheap to execute per mutant.
    let probe = |schema: &Schema| -> Dataset {
        let rows: Vec<Vec<u16>> = (0..12u16)
            .map(|i| (0..schema.len()).map(|a| (i + a as u16) % schema.domain(a)).collect())
            .collect();
        Dataset::from_rows(schema, rows).unwrap()
    };

    for e in &corpus {
        let data = probe(&e.schema);
        for m in mutants(&e.wire) {
            if m == e.wire {
                continue;
            }
            match verify_wire(&m, &e.query, &e.schema) {
                Err(err) => {
                    rejected += 1;
                    classes.insert(err.class());
                    // Rejection never licenses a panic downstream: the
                    // checked interpreter may error, the total one must
                    // return a reject-on-garbage outcome.
                    for r in 0..data.len() {
                        let _ =
                            execute_wire(&m, &e.query, &e.schema, &mut RowSource::new(&data, r));
                        let _ = execute_wire_verified(
                            &m,
                            &e.query,
                            &e.schema,
                            &mut RowSource::new(&data, r),
                        );
                    }
                }
                Ok(cert) => {
                    // A mutation that survives verification is, by
                    // definition, a different-but-valid plan. It must
                    // behave exactly like one.
                    accepted += 1;
                    let slack = 1e-9 * cert.bound.worst_case.abs().max(1.0);
                    for r in 0..data.len() {
                        let checked =
                            execute_wire(&m, &e.query, &e.schema, &mut RowSource::new(&data, r))
                                .unwrap_or_else(|err| {
                                    panic!("{}: accepted mutant {m:?} errored: {err}", e.label)
                                });
                        let fast = execute_wire_verified(
                            &m,
                            &e.query,
                            &e.schema,
                            &mut RowSource::new(&data, r),
                        );
                        assert_eq!(checked.verdict, fast.verdict, "{}: {m:?} row {r}", e.label);
                        assert_eq!(
                            checked.cost.to_bits(),
                            fast.cost.to_bits(),
                            "{}: {m:?} row {r}",
                            e.label
                        );
                        assert!(
                            checked.cost >= cert.bound.best_case - slack
                                && checked.cost <= cert.bound.worst_case + slack,
                            "{}: accepted mutant {m:?} row {r}: cost {} escapes {:?}",
                            e.label,
                            checked.cost,
                            cert.bound
                        );
                    }
                }
            }
        }
    }

    assert!(rejected > 0, "corpus produced no rejected mutants");
    assert!(
        classes.len() >= 6,
        "want >= 6 distinct corruption classes, got {}: {classes:?}",
        classes.len()
    );
    // The storm must exercise both outcomes, or the accept arm above is
    // dead code and the differential property was never tested.
    assert!(accepted > 0, "no mutant survived verification; accept-path property untested");
}

/// Corrupting the *claim* instead of the bytes is its own class: the
/// wire verifies, but `check_claim` rejects a cost outside the
/// certified interval with the stable `cost-claim` label.
#[test]
fn corrupted_cost_claims_are_their_own_class() {
    for e in &corpus() {
        let cert = verify_wire(&e.wire, &e.query, &e.schema).unwrap();
        let high = cert.bound.worst_case + 1.0 + cert.bound.worst_case.abs();
        let low = cert.bound.best_case - 1.0 - cert.bound.best_case.abs();
        for claim in [high, low, f64::NAN, f64::INFINITY] {
            let err = cert
                .check_claim(claim)
                .expect_err(&format!("{}: claim {claim} must be rejected", e.label));
            assert_eq!(err.class(), "cost-claim", "{}: {err}", e.label);
            assert!(matches!(err, VerifyError::CostClaim { .. }), "{}: {err:?}", e.label);
        }
        // And the honest claim — any convex combination of path costs —
        // still passes (spot-check the midpoint).
        let mid = 0.5 * (cert.bound.best_case + cert.bound.worst_case);
        cert.check_claim(mid).unwrap();
    }
}
