//! Static-verifier round-trip properties (`DESIGN.md` §15).
//!
//! The soundness contract of `acqp-verify`, pinned from the outside:
//!
//! 1. **Completeness on honest plans** — every wire image produced by
//!    `Plan::encode` from a real planner verifies clean, and the
//!    planner's claimed expected cost always lands inside the certified
//!    bound (`check_claim` passes without clamping).
//! 2. **Bound soundness** — no tuple's *actual* execution cost ever
//!    escapes the certified `[best_case, worst_case]` interval, under
//!    all three executors: the tree walker, the checked wire
//!    interpreter, and the certificate-gated fast path.
//! 3. **Executor agreement** — all three executors return the same
//!    verdict and bitwise-identical cost for every row, so the
//!    certified fast path (`execute_wire_verified`) is not buying its
//!    speed with different arithmetic.

// Bitwise f64 comparison is the point of the differential assertions.
#![allow(clippy::float_cmp)]

mod common;

use acqp::core::prelude::*;
use acqp::sensornet::interp::{execute_wire, execute_wire_verified};
use acqp::verify::{verify_wire, Certificate};
use common::{instance_strategy, Instance};
use proptest::prelude::*;

/// Honors the `PROPTEST_CASES` override the sanitizer CI jobs set.
fn cases(default_n: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

/// Relative slack for interval membership, mirroring
/// `CostBound::check_claim`'s tolerance: float summation order may
/// differ between the verifier's path fold and an executor's traversal.
fn eps(cert: &Certificate) -> f64 {
    1e-9 * cert.bound.worst_case.abs().max(1.0)
}

/// One planner's report, verified and executed row-by-row against the
/// certificate. Returns the certificate so callers can cross-check
/// planner-independent facts.
fn verify_and_execute(inst: &Instance, report: &PlanReport, label: &str) -> Certificate {
    let wire = report.plan.encode();
    let cert = verify_wire(&wire, &inst.query, &inst.schema)
        .unwrap_or_else(|e| panic!("{label}: honest plan rejected: {e} ({wire:?})"));
    assert!(
        cert.bound.best_case <= cert.bound.worst_case,
        "{label}: inverted bound {:?}",
        cert.bound
    );
    cert.check_claim(report.expected_cost).unwrap_or_else(|e| {
        panic!("{label}: claimed {} outside {:?}: {e}", report.expected_cost, cert.bound)
    });
    let slack = eps(&cert);
    for r in 0..inst.data.len() {
        let tree =
            execute(&report.plan, &inst.query, &inst.schema, &mut RowSource::new(&inst.data, r));
        let checked =
            execute_wire(&wire, &inst.query, &inst.schema, &mut RowSource::new(&inst.data, r))
                .unwrap_or_else(|e| panic!("{label}: row {r}: honest wire errored: {e}"));
        let fast = execute_wire_verified(
            &wire,
            &inst.query,
            &inst.schema,
            &mut RowSource::new(&inst.data, r),
        );
        assert_eq!(tree.verdict, checked.verdict, "{label}: row {r}: tree vs wire verdict");
        assert_eq!(tree.verdict, fast.verdict, "{label}: row {r}: tree vs fast-path verdict");
        assert_eq!(
            tree.cost.to_bits(),
            checked.cost.to_bits(),
            "{label}: row {r}: tree vs wire cost"
        );
        assert_eq!(
            tree.cost.to_bits(),
            fast.cost.to_bits(),
            "{label}: row {r}: tree vs fast-path cost"
        );
        assert!(
            tree.cost >= cert.bound.best_case - slack && tree.cost <= cert.bound.worst_case + slack,
            "{label}: row {r}: cost {} escapes certified bound {:?}",
            tree.cost,
            cert.bound
        );
    }
    cert
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(24), ..ProptestConfig::default() })]

    /// Every `Plan::encode` image from the whole planner family
    /// verifies clean, claims check, and no row's actual cost escapes
    /// the certified interval under any executor.
    #[test]
    fn encoded_plans_verify_clean_and_bounds_hold(inst in instance_strategy()) {
        let est = CountingEstimator::new(&inst.data);
        let seq = GreedyPlanner::new(0)
            .plan_with_report(&inst.schema, &inst.query, &est)
            .expect("seq planning succeeds");
        let greedy = GreedyPlanner::new(3)
            .plan_with_report(&inst.schema, &inst.query, &est)
            .expect("greedy planning succeeds");
        let exhaustive = ExhaustivePlanner::new()
            .max_subproblems(20_000)
            .plan_with_report(&inst.schema, &inst.query, &est)
            .expect("exhaustive planning succeeds");

        let c_seq = verify_and_execute(&inst, &seq, "seq");
        let c_greedy = verify_and_execute(&inst, &greedy, "greedy");
        let c_ex = verify_and_execute(&inst, &exhaustive, "exhaustive");

        // The certificate's own expectation evaluator must agree with
        // the planner's claim (both run Eq. 3 on the decoded tree), and
        // convexity puts any expectation inside the certified interval.
        for (cert, report, label) in
            [(&c_seq, &seq, "seq"), (&c_greedy, &greedy, "greedy"), (&c_ex, &exhaustive, "ex")]
        {
            let ex = cert.expected_under(&report.plan, &inst.query, &inst.schema, &est);
            let slack = eps(cert);
            prop_assert!(
                ex >= cert.bound.best_case - slack && ex <= cert.bound.worst_case + slack,
                "{}: expectation {} outside {:?}", label, ex, cert.bound
            );
        }
    }

    /// Decode/encode round trips through the verifier: re-encoding the
    /// decoded tree yields bytes the verifier certifies with the exact
    /// same bound — verification is a property of the plan, not of one
    /// particular byte image.
    #[test]
    fn reencoded_plans_keep_their_certificate(inst in instance_strategy()) {
        let est = CountingEstimator::new(&inst.data);
        let report = GreedyPlanner::new(2)
            .plan_with_report(&inst.schema, &inst.query, &est)
            .expect("planning succeeds");
        let wire = report.plan.encode();
        let cert = verify_wire(&wire, &inst.query, &inst.schema).expect("honest plan verifies");
        let rewire = Plan::decode(&wire).expect("honest wire decodes").encode();
        prop_assert_eq!(&wire, &rewire, "encode is canonical");
        let recert = verify_wire(&rewire, &inst.query, &inst.schema).expect("re-encode verifies");
        prop_assert_eq!(cert.bound.best_case.to_bits(), recert.bound.best_case.to_bits());
        prop_assert_eq!(cert.bound.worst_case.to_bits(), recert.bound.worst_case.to_bits());
        prop_assert_eq!(cert.stats, recert.stats);
    }
}
