//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides a small wall-clock harness with criterion's
//! calling convention: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`] and [`black_box`]. It reports median / mean
//! per-iteration times to stdout and does no statistical analysis.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up phase, then `sample_size` timed
    /// samples spread over the measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        // Aim each sample at measurement/sample_size wall time.
        let warm_elapsed = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_iter = warm_elapsed / (warm_iters.max(1) as u32);
        let target = self.measurement / self.sample_size as u32;
        let iters_per_sample = (target.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
        self
    }

    /// Benchmarks `f`, labeled by `id`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(&mut self) {}
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{label:<48} median {median:>12.3?}   mean {mean:>12.3?}");
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies `--quick` from the command line (the only flag this
    /// stand-in understands); other flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--quick") {
            self.warm_up = Duration::from_millis(50);
            self.measurement = Duration::from_millis(200);
            self.sample_size = 10;
        }
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Prints the closing summary (no-op in this harness).
    pub fn final_summary(&mut self) {}

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &mut b.samples);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut g = c.benchmark_group("smoke");
        let mut ran = false;
        g.bench_with_input(BenchmarkId::from_parameter(1), &1u64, |b, &x| {
            b.iter(|| black_box(x + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
