//! Offline stand-in for the `crossbeam` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the slice of crossbeam the workspace uses:
//! [`thread::scope`] (implemented on top of `std::thread::scope`, which
//! has subsumed crossbeam's scoped threads since Rust 1.63) and a
//! mutex-backed [`deque::Injector`] work queue with the same
//! `push`/`steal` surface as crossbeam-deque's injector.

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    use std::any::Any;

    /// A scope handle; closures passed to [`Scope::spawn`] receive a
    /// reference to it so spawned threads can spawn further work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// payload of its panic.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, like
        /// crossbeam's `|_|` idiom.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope in which threads borrowing from the environment
    /// may be spawned; all are joined before `scope` returns. Child
    /// panics propagate as a panic of the scope itself, so the `Ok`
    /// arm matches crossbeam's common `scope(...).unwrap()` usage.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

pub mod deque {
    //! A minimal FIFO injector queue with crossbeam-deque's `steal`
    //! surface, sufficient for a shared work pool.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The attempt raced with another consumer; retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A FIFO queue any thread may push to or steal from.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};

    #[test]
    fn scope_joins_and_collects() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn injector_drains_across_threads() {
        let q = Injector::new();
        for i in 0..1000 {
            q.push(i);
        }
        let sum: i64 = super::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        let mut local = 0i64;
                        while let Steal::Success(v) = q.steal() {
                            local += v;
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, (0..1000).sum::<i64>());
        assert!(q.is_empty());
    }
}
