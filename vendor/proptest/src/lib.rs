//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate reimplements the subset of proptest's API the
//! workspace uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range / tuple / `Just` / `any` / `collection::vec` /
//! `bool::ANY` strategies, the [`proptest!`] macro, `prop_assert*!`,
//! `prop_assume!` and [`ProptestConfig`].
//!
//! Differences from the real crate, deliberate for this use:
//! * **No shrinking** — a failing case reports its inputs and the
//!   deterministic case seed instead of a minimized counterexample.
//! * **Deterministic generation** — cases derive from a fixed per-test
//!   seed, so failures always reproduce.

use std::fmt;

/// Deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x6a09e667f3bcc909 }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Outcome of one generated case, used by the [`proptest!`] expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseResult {
    /// The body ran to completion.
    Pass,
    /// The case was rejected by `prop_assume!`.
    Reject,
}

/// Runner configuration (`cases` is the only knob the workspace tunes).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// Drives `f` until `cfg.cases` cases pass; panics inside `f` propagate.
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut f: impl FnMut(&mut TestRng, u32) -> CaseResult,
) {
    // Stable per-test seed: FNV-1a over the test path.
    let mut seed = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    let mut passes = 0u32;
    let mut rejects = 0u32;
    let mut case = 0u32;
    while passes < cfg.cases {
        let mut rng = TestRng::new(seed.wrapping_add(u64::from(case)));
        match f(&mut rng, case) {
            CaseResult::Pass => passes += 1,
            CaseResult::Reject => {
                rejects += 1;
                if rejects > cfg.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejects}) before reaching {} passing cases",
                        cfg.cases
                    );
                }
            }
        }
        case += 1;
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, whence, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}': 1024 consecutive rejections", self.whence);
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    #[doc(hidden)]
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy over `T`'s full domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Widen before the +1: `0u64..=u64::MAX` has 2^64 values,
                // which overflows a u64 span (debug-mode add-overflow).
                let span = hi as u128 - lo as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! `Vec` strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end);
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` of values drawn from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod bool {
    //! `bool` strategies.

    use super::{Strategy, TestRng};

    /// See [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A fair coin flip.
    pub const ANY: BoolAny = BoolAny;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    /// Re-export so `proptest::collection::vec` resolves via the prelude
    /// crate alias too.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is regenerated, not failed) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::run_cases(
                    &__cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng, __case| {
                        $(let $arg = $crate::Strategy::new_value(&($strat), __rng);)+
                        let __outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                        match __outcome {
                            ::core::result::Result::Ok(()) => $crate::CaseResult::Pass,
                            ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                                $crate::CaseResult::Reject
                            }
                            ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                                panic!(
                                    "proptest {} failed at deterministic case #{}:\n{}",
                                    stringify!($name), __case, msg
                                );
                            }
                        }
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u16..=9).new_value(&mut rng);
            assert!((3..=9).contains(&v));
            let w = (0usize..5).new_value(&mut rng);
            assert!(w < 5);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..=u64::MAX, collection::vec(0u16..100, 5usize));
        let a = strat.new_value(&mut crate::TestRng::new(7));
        let b = strat.new_value(&mut crate::TestRng::new(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(x in 1usize..=50, v in collection::vec(any::<u64>(), 3usize)) {
            prop_assert!((1..=50).contains(&x));
            prop_assert_eq!(v.len(), 3);
            prop_assume!(x != 17);
            prop_assert_ne!(x, 17);
        }

        #[test]
        fn flat_map_threads_values(inst in (2usize..=5).prop_flat_map(|n| {
            (Just(n), collection::vec(0u16..8, n))
        })) {
            let (n, v) = inst;
            prop_assert_eq!(v.len(), n);
        }
    }
}
