//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`. Streams are
//! deterministic per seed (xoshiro256** seeded via SplitMix64) but are
//! *not* bit-compatible with the real crate — all in-tree consumers
//! only rely on determinism, never on specific draws.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Types sampled uniformly over their whole value set by [`Rng::gen`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly sampleable over a half-open or closed interval.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    #[doc(hidden)]
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive && lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span =
                    (hi as u128).wrapping_sub(lo as u128) as u64 + u64::from(inclusive);
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // is irrelevant for synthetic data generation.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_interval(rng, lo, hi, true)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample within `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator — the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn unit_interval_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    use super::RngCore;
}
